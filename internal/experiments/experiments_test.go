package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func params(t *testing.T) Params {
	if testing.Short() {
		return Params{TSFlows: 64, Duration: 30 * sim.Millisecond, Seed: 42}
	}
	return ShortParams()
}

func TestTableIValues(t *testing.T) {
	rows := TableI()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].TotalKb != 2304 || rows[1].TotalKb != 1764 {
		t.Fatalf("totals = %v/%v, want 2304/1764", rows[0].TotalKb, rows[1].TotalKb)
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "540Kb") {
		t.Fatalf("missing saving line:\n%s", out)
	}
}

func TestTableIIIValues(t *testing.T) {
	cols, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 {
		t.Fatalf("columns = %d", len(cols))
	}
	wantTotals := []float64{10818, 5778, 3942, 2106}
	wantRed := []float64{0, 46.59, 63.56, 80.53}
	for i, c := range cols {
		if c.TotalKb != wantTotals[i] {
			t.Errorf("%s: total %v, want %v", c.Label, c.TotalKb, wantTotals[i])
		}
		if math.Abs(c.Reduction-wantRed[i]) > 0.005 {
			t.Errorf("%s: reduction %.2f, want %.2f", c.Label, c.Reduction, wantRed[i])
		}
	}
	out := FormatTableIII(cols)
	for _, frag := range []string{"10818Kb", "80.53%", "Switch Tbl", "Buffers"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table III output missing %q", frag)
		}
	}
}

func TestFig7HopsShape(t *testing.T) {
	p := params(t)
	s, err := Fig7Hops(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	slot := 65 * sim.Microsecond
	for i, r := range s.Rows {
		hops := sim.Time(i + 1)
		if r.LossRate != 0 {
			t.Errorf("hops=%d loss %v", i+1, r.LossRate)
		}
		// Eq. (1): latency within [(h-1)·slot, (h+1)·slot] (plus sub-
		// slot wire time).
		if r.Min < (hops-1)*slot || r.Max > (hops+1)*slot+2*sim.Microsecond {
			t.Errorf("hops=%d latency [%v,%v] outside CQF bounds", i+1, r.Min, r.Max)
		}
		// Monotone growth.
		if i > 0 && r.Mean <= s.Rows[i-1].Mean {
			t.Errorf("mean latency not increasing at hops=%d", i+1)
		}
	}
	// Jitter roughly constant: max/min within 2.5x.
	minJ, maxJ := s.Rows[0].Jitter, s.Rows[0].Jitter
	for _, r := range s.Rows[1:] {
		if r.Jitter < minJ {
			minJ = r.Jitter
		}
		if r.Jitter > maxJ {
			maxJ = r.Jitter
		}
	}
	if minJ > 0 && float64(maxJ)/float64(minJ) > 2.5 {
		t.Errorf("jitter varies too much across hops: %v..%v", minJ, maxJ)
	}
}

func TestFig7SlotShape(t *testing.T) {
	p := params(t)
	s, err := Fig7Slot(p)
	if err != nil {
		t.Fatal(err)
	}
	// Latency and jitter scale with slot size.
	for i := 1; i < len(s.Rows); i++ {
		if s.Rows[i].Mean <= s.Rows[i-1].Mean {
			t.Errorf("mean not increasing with slot at row %d", i)
		}
		if s.Rows[i].LossRate != 0 {
			t.Errorf("slot row %d loss %v", i, s.Rows[i].LossRate)
		}
	}
	// Mean at 520 µs should be ≈ 8× the 65 µs mean (both ≈ 3·slot).
	ratio := float64(s.Rows[3].Mean) / float64(s.Rows[0].Mean)
	if ratio < 5 || ratio > 11 {
		t.Errorf("slot scaling ratio = %.1f, want ~8", ratio)
	}
}

func TestFig7BackgroundFlat(t *testing.T) {
	p := params(t)
	s, err := Fig7Background(p)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Rows[0]
	for _, r := range s.Rows {
		if r.LossRate != 0 {
			t.Errorf("%s: TS loss %v", r.Label, r.LossRate)
		}
		diff := float64(r.Mean - base.Mean)
		if math.Abs(diff) > float64(10*sim.Microsecond) {
			t.Errorf("%s: mean %v deviates from unloaded %v", r.Label, r.Mean, base.Mean)
		}
	}
}

func TestFig2Flat(t *testing.T) {
	p := params(t)
	for _, bg := range []string{"BE", "RC"} {
		for _, cse := range []int{1, 2} {
			s, err := Fig2(p, bg, cse)
			if err != nil {
				t.Fatal(err)
			}
			base := s.Rows[0]
			for _, r := range s.Rows {
				if r.LossRate != 0 {
					t.Errorf("%s case %d %s: loss %v", bg, cse, r.Label, r.LossRate)
				}
				diff := math.Abs(float64(r.Mean - base.Mean))
				if diff > float64(10*sim.Microsecond) {
					t.Errorf("%s case %d %s: mean %v vs base %v", bg, cse, r.Label, r.Mean, base.Mean)
				}
			}
		}
	}
}

func TestFig2InvalidArgs(t *testing.T) {
	p := params(t)
	if _, err := Fig2(p, "XX", 1); err == nil {
		t.Error("unknown background accepted")
	}
	if _, err := Fig2(p, "BE", 9); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestCommercialVsCustomizedQoS(t *testing.T) {
	p := params(t)
	s, err := CommercialVsCustomizedQoS(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	com, cus := s.Rows[0], s.Rows[1]
	if com.LossRate != 0 || cus.LossRate != 0 {
		t.Fatalf("loss: %v / %v", com.LossRate, cus.LossRate)
	}
	diff := math.Abs(float64(com.Mean - cus.Mean))
	if diff > float64(10*sim.Microsecond) {
		t.Fatalf("QoS differs: commercial %v vs customized %v", com.Mean, cus.Mean)
	}
}

func TestSyncPrecision(t *testing.T) {
	res := SyncPrecision(7)
	if res.SteadyState >= 50*sim.Nanosecond {
		t.Fatalf("steady-state precision %v, want < 50ns", res.SteadyState)
	}
	if res.ConvergedAfter == 0 {
		t.Fatal("never converged")
	}
}

func TestITPAblation(t *testing.T) {
	p := params(t)
	rows, err := ITPAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(rows))
	}
	naive, planned := rows[0], rows[len(rows)-1]
	if planned.Occupancy >= naive.Occupancy {
		t.Fatalf("ITP did not reduce occupancy: %d vs %d", planned.Occupancy, naive.Occupancy)
	}
	if planned.QueueBufKb >= naive.QueueBufKb {
		t.Fatalf("ITP did not reduce BRAM: %v vs %v", planned.QueueBufKb, naive.QueueBufKb)
	}
	// Greedy must be at least as good as every blind strategy.
	for _, r := range rows[:3] {
		if planned.Occupancy > r.Occupancy {
			t.Fatalf("greedy (%d) worse than %s (%d)", planned.Occupancy, r.Strategy, r.Occupancy)
		}
	}
	out := FormatITP(rows)
	if !strings.Contains(out, "ITP (greedy)") {
		t.Fatal("format missing rows")
	}
}

func TestPlatformAblation(t *testing.T) {
	rows, err := PlatformAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].TotalKb >= rows[0].TotalKb {
		t.Fatalf("ASIC (%v) not below FPGA (%v)", rows[1].TotalKb, rows[0].TotalKb)
	}
}

func TestThresholdStudyKnee(t *testing.T) {
	// The knee position depends on per-slot occupancy, so this test
	// needs the paper-scale flow count; the window can stay short.
	p := params(t)
	p.TSFlows = 1024
	rows, err := ThresholdStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Depth 1 must lose packets; the largest depths must not.
	if rows[0].TSLossRate == 0 {
		t.Error("depth 1 shows no loss — threshold invisible")
	}
	last := rows[len(rows)-1]
	if last.TSLossRate != 0 {
		t.Errorf("depth %d still losing %.2f%%", last.QueueDepth, 100*last.TSLossRate)
	}
	// Loss is monotonically non-increasing with depth.
	for i := 1; i < len(rows); i++ {
		if rows[i].TSLossRate > rows[i-1].TSLossRate+1e-9 {
			t.Errorf("loss increased from depth %d to %d", rows[i-1].QueueDepth, rows[i].QueueDepth)
		}
	}
	// Above the threshold, latency is identical: extra memory is free.
	var atThreshold *ThresholdRow
	for i := range rows {
		if rows[i].TSLossRate == 0 {
			atThreshold = &rows[i]
			break
		}
	}
	if atThreshold == nil {
		t.Fatal("never reached zero loss")
	}
	if d := last.MeanLat - atThreshold.MeanLat; d > sim.Microsecond || d < -sim.Microsecond {
		t.Errorf("latency changed above threshold: %v vs %v", atThreshold.MeanLat, last.MeanLat)
	}
	out := FormatThreshold(rows)
	if !strings.Contains(out, "E-THRESHOLD") {
		t.Fatal("format broken")
	}
}

func TestNoITPStudy(t *testing.T) {
	p := params(t)
	planned, naive, err := NoITPStudy(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if planned.TSLossRate != 0 {
		t.Errorf("planned injection lost %.2f%%", 100*planned.TSLossRate)
	}
	if naive.TSLossRate <= planned.TSLossRate {
		t.Errorf("naive injection (%.2f%%) not worse than planned (%.2f%%)",
			100*naive.TSLossRate, 100*planned.TSLossRate)
	}
	if naive.HighWater < planned.HighWater {
		t.Errorf("naive high water %d below planned %d", naive.HighWater, planned.HighWater)
	}
}

func TestTASvsCQF(t *testing.T) {
	p := params(t)
	rows, err := TASvsCQF(p)
	if err != nil {
		t.Fatal(err)
	}
	cqf, tasRow := rows[0], rows[1]
	if cqf.LossRate != 0 || tasRow.LossRate != 0 {
		t.Fatalf("loss: cqf %v tas %v", cqf.LossRate, tasRow.LossRate)
	}
	// TAS removes the slot quantization: an order of magnitude lower
	// latency and jitter.
	if tasRow.Mean*10 > cqf.Mean {
		t.Errorf("TAS mean %v not ≪ CQF mean %v", tasRow.Mean, cqf.Mean)
	}
	if tasRow.Jitter*5 > cqf.Jitter {
		t.Errorf("TAS jitter %v not ≪ CQF jitter %v", tasRow.Jitter, cqf.Jitter)
	}
	// The price: gate tables grow well beyond CQF's 2 entries.
	if tasRow.GateEntries <= cqf.GateEntries {
		t.Errorf("TAS gate entries %d not above CQF's %d", tasRow.GateEntries, cqf.GateEntries)
	}
	if !strings.Contains(FormatTAS(rows), "E-TAS") {
		t.Fatal("format broken")
	}
}

func TestSMSStudy(t *testing.T) {
	p := params(t)
	rows, err := SMSStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	perPort, shared := rows[0], rows[1]
	if perPort.TSLossRate != 0 || shared.TSLossRate != 0 {
		t.Fatalf("loss: per-port %v shared %v", perPort.TSLossRate, shared.TSLossRate)
	}
	// Statistical multiplexing: the shared pool carries the same
	// traffic with fewer total buffers.
	if shared.BufferTotal >= perPort.BufferTotal {
		t.Errorf("shared %d buffers not below per-port %d", shared.BufferTotal, perPort.BufferTotal)
	}
	if shared.BufferKb >= perPort.BufferKb {
		t.Errorf("shared BRAM %v not below per-port %v", shared.BufferKb, perPort.BufferKb)
	}
	if !strings.Contains(FormatSMS(rows), "E-SMS") {
		t.Fatal("format broken")
	}
}

func TestDesyncStudy(t *testing.T) {
	p := params(t)
	p.TSFlows = 512 // enough load to make boundary straddling visible
	rows, err := DesyncStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Offset != 0 {
		t.Fatal("first row must be the synchronized baseline")
	}
	if rows[0].LossRate != 0 || rows[0].BoundBreak {
		t.Fatalf("synchronized baseline degraded: %+v", rows[0])
	}
	// Some nonzero offset must inflate jitter over the baseline
	// (boundary straddling splits frames across departure slots).
	inflated := false
	for _, r := range rows[1:] {
		if float64(r.Jitter) > 1.3*float64(rows[0].Jitter) {
			inflated = true
		}
	}
	if !inflated {
		t.Error("no desync offset inflated jitter — study not sensitive")
	}
	if !strings.Contains(FormatDesync(rows), "E-DESYNC") {
		t.Fatal("format broken")
	}
}

func TestDeadlineStudy(t *testing.T) {
	p := params(t)
	rows, err := DeadlineStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	// At 65 µs every deadline class holds.
	if rows[0].MissRate != 0 {
		t.Fatalf("misses at 65µs slot: %v", rows[0].MissRate)
	}
	// At 520 µs the 1 ms deadline class must miss: the Eq. (1) upper
	// bound (2.08 ms) exceeds it.
	last := rows[len(rows)-1]
	if last.MissRate == 0 {
		t.Fatal("no misses at 520µs slot — deadline accounting inert")
	}
	// Misses grow (weakly) with the slot.
	for i := 1; i < len(rows); i++ {
		if rows[i].MissRate < rows[i-1].MissRate-1e-9 {
			t.Fatalf("miss rate decreased at %v", rows[i].Slot)
		}
	}
	if !strings.Contains(FormatDeadline(rows), "E-DEADLINE") {
		t.Fatal("format broken")
	}
}

func TestCBSStudy(t *testing.T) {
	p := params(t)
	rows, err := CBSStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	bare, shaped := rows[0], rows[1]
	// CBS spreads the RC burst: RC latency rises…
	if shaped.RCMean <= bare.RCMean {
		t.Errorf("CBS did not delay the shaped class: %v vs %v", shaped.RCMean, bare.RCMean)
	}
	// …and the BE tail collapses.
	if float64(shaped.BEP99)*2 > float64(bare.BEP99) {
		t.Errorf("CBS did not protect BE tail: p99 %v vs %v", shaped.BEP99, bare.BEP99)
	}
	if bare.BELoss != 0 || shaped.BELoss != 0 {
		t.Errorf("unexpected BE loss: %v / %v", bare.BELoss, shaped.BELoss)
	}
	if !strings.Contains(FormatCBS(rows), "E-CBS") {
		t.Fatal("format broken")
	}
}

func TestPreemptStudy(t *testing.T) {
	p := params(t)
	rows, err := PreemptStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	plain, preempt := rows[0], rows[1]
	// Without preemption the worst case includes one full 1500 B frame
	// (~12.2 µs at 1 Gbps).
	if plain.TSMax < 11*sim.Microsecond {
		t.Errorf("baseline max %v misses the MTU blocking", plain.TSMax)
	}
	// With preemption the blocking collapses below 3 µs.
	if preempt.TSMax > 3*sim.Microsecond {
		t.Errorf("preemptive max %v, want < 3µs", preempt.TSMax)
	}
	if preempt.TSMean*3 > plain.TSMean {
		t.Errorf("preemption gain too small: %v vs %v", preempt.TSMean, plain.TSMean)
	}
	if !strings.Contains(FormatPreempt(rows), "E-PREEMPT") {
		t.Fatal("format broken")
	}
}

func TestRateStudy(t *testing.T) {
	p := params(t)
	rows, err := RateStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].Feasible || rows[0].TSLossRate != 0 {
		t.Fatalf("gigabit row degraded: %+v", rows[0])
	}
	last := rows[len(rows)-1] // 10 Mbps: frame tx > slot
	if last.Feasible {
		t.Fatal("10 Mbps flagged feasible")
	}
	if last.TSLossRate < 0.99 {
		t.Fatalf("10 Mbps loss = %v, want ~100%% (guard band never opens)", last.TSLossRate)
	}
	// Latency grows as the access rate falls (while feasible).
	if rows[1].TSMean <= rows[0].TSMean {
		t.Errorf("100 Mbps mean %v not above gigabit %v", rows[1].TSMean, rows[0].TSMean)
	}
	if !strings.Contains(FormatRate(rows), "E-RATE") {
		t.Fatal("format broken")
	}
}

func TestSeriesString(t *testing.T) {
	s := &Series{Name: "test", XAxis: "x", Rows: []Row{{Label: "a", Mean: 65 * sim.Microsecond}}}
	out := s.String()
	if !strings.Contains(out, "65.0") || !strings.Contains(out, "mean") {
		t.Fatalf("series format:\n%s", out)
	}
}
