package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestFanOutCtxCompletesWithoutCancel(t *testing.T) {
	const n = 50
	var calls atomic.Int64
	err := FanOutCtx(context.Background(), 8, n, func(i int) bool {
		calls.Add(1)
		return true
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != n {
		t.Fatalf("calls = %d, want %d", got, n)
	}
}

func TestFanOutCtxStopsClaimingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	err := FanOutCtx(ctx, 2, 10_000, func(i int) bool {
		calls.Add(1)
		select {
		case started <- struct{}{}:
			// First index in: cancel from here so the test needs no
			// background goroutine or sleep.
			cancel()
		default:
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight work finished, but the sweep stopped claiming: far
	// fewer than n indices ran.
	if got := calls.Load(); got == 0 || got >= 10_000 {
		t.Fatalf("calls = %d, want a small nonzero prefix", got)
	}
}

func TestFanOutCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := FanOutCtx(ctx, 4, 100, func(i int) bool {
		calls.Add(1)
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("pre-cancelled context still ran %d indices", got)
	}
}

func TestFanOutCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var calls atomic.Int64
	err := FanOutCtx(ctx, 4, 1_000_000, func(i int) bool {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return true
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestFanOutCtxEarlyStopReturnsNil(t *testing.T) {
	// fn returning false is the legacy stop signal, not a context
	// cancellation: no error.
	var calls atomic.Int64
	err := FanOutCtx(context.Background(), 1, 100, func(i int) bool {
		calls.Add(1)
		return i < 5
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("calls = %d, want 6", got)
	}
}
