package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// RateRow is one access-rate data point.
type RateRow struct {
	AccessMbps int
	SlotUs     int
	Feasible   bool // per the analytical check
	TSMean     sim.Time
	TSMax      sim.Time
	TSLossRate float64
}

// RateStudy probes mixed-speed networks: 1 Gbps trunks with slower
// host access links. CQF's feasibility constraint — one slot's frames
// must drain within a slot — binds at the slowest egress a TS flow
// crosses. The study sweeps the access rate at a fixed 65 µs slot and
// shows the analytical CheckSlotFeasibility verdict agreeing with the
// simulated outcome: feasible rates keep zero loss and bounded
// latency; infeasible ones back up the access port until frames drop.
func RateStudy(p Params) ([]RateRow, error) {
	slot := 65 * sim.Microsecond
	run := func(rp Params, accessMbps int) (RateRow, error) {
		topo := topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
		}
		specs := flows.GenerateTS(flows.TSParams{
			Count:    rp.TSFlows,
			Period:   10 * sim.Millisecond,
			WireSize: 64,
			VID:      1,
			Hosts: func(i int) (int, int) {
				src := i % 6
				return 100 + src, 100 + (src+2)%6
			},
			Seed: rp.Seed,
		})
		for i, s := range specs {
			s.VID = uint16(1 + i%4000)
		}
		if err := core.BindPaths(topo, specs); err != nil {
			return RateRow{}, err
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs, SlotSize: slot})
		if err != nil {
			return RateRow{}, err
		}
		der.Plan.Apply(specs)
		design, err := core.BuilderFor(der.Config, nil).Build()
		if err != nil {
			return RateRow{}, err
		}
		rate := ethernet.Rate(accessMbps) * ethernet.Mbps
		issues := core.CheckSlotFeasibility(der.Plan, rate, 64)
		net, err := testbed.Build(testbed.Options{
			Design: design, Topo: topo, Flows: specs,
			AccessRate: rate, Seed: rp.Seed,
		})
		if err != nil {
			return RateRow{}, err
		}
		net.Run(0, rp.Duration)
		s := net.Summary(ethernet.ClassTS)
		return RateRow{
			AccessMbps: accessMbps,
			SlotUs:     int(slot / sim.Microsecond),
			Feasible:   len(issues) == 0,
			TSMean:     s.MeanLatency,
			TSMax:      s.MaxLat,
			TSLossRate: s.LossRate,
		}, nil
	}

	rates := []int{1000, 100, 30, 10}
	return sweep(p, len(rates), func(i int, rp Params) (RateRow, error) {
		return run(rp, rates[i])
	})
}

// FormatRate renders the study.
func FormatRate(rows []RateRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-RATE — mixed-speed access links vs the 65µs CQF slot\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s %10s %8s\n", "access", "feasible?", "mean(µs)", "max(µs)", "loss")
	for _, r := range rows {
		feasible := "yes"
		if !r.Feasible {
			feasible = "NO"
		}
		fmt.Fprintf(&b, "  %6dMbps %10s %10.1f %10.1f %7.2f%%\n",
			r.AccessMbps, feasible, r.TSMean.Micros(), r.TSMax.Micros(), 100*r.TSLossRate)
	}
	return b.String()
}
