package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// SMSRow is one buffer-architecture data point.
type SMSRow struct {
	Architecture string
	BufferTotal  int // buffers provisioned per switch
	BufferKb     float64
	TSLossRate   float64
	PeakUsage    int // worst concurrent buffer usage observed
}

// SMSStudy compares the paper's per-port buffer pools against the
// switch-memory-switch (SMS) shared-pool architecture of §VI/ref [16]:
// SMS shares buffers among all ports, so statistical multiplexing lets
// a smaller total pool carry the same traffic without loss. TSN-Builder
// addresses the same waste by customizing the per-port parameters; this
// study quantifies both against each other on the ring workload with
// RC+BE background.
func SMSStudy(p Params) ([]SMSRow, error) {
	build := func(shared int) (*testbed.Net, *core.Derivation, error) {
		topo := topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
			topo.AttachHost(200+h, h)
		}
		specs := flows.GenerateTS(flows.TSParams{
			Count:    p.TSFlows,
			Period:   10 * sim.Millisecond,
			WireSize: 64,
			VID:      1,
			Hosts: func(i int) (int, int) {
				src := i % 6
				return 100 + src, 100 + (src+2)%6
			},
			Seed: p.Seed,
		})
		for i, s := range specs {
			s.VID = uint16(1 + i%4000)
		}
		id := uint32(100_000)
		for src := 0; src < 3; src++ {
			specs = append(specs, flows.Background(id, ethernet.ClassRC,
				200+src, 100+(src+2)%6, uint16(3000+src), 100*ethernet.Mbps))
			id++
			specs = append(specs, flows.Background(id, ethernet.ClassBE,
				200+src, 100+(src+2)%6, uint16(3200+src), 100*ethernet.Mbps))
			id++
		}
		if err := core.BindPaths(topo, specs); err != nil {
			return nil, nil, err
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			return nil, nil, err
		}
		der.Plan.Apply(specs)
		design, err := core.BuilderFor(der.Config, nil).Build()
		if err != nil {
			return nil, nil, err
		}
		net, err := testbed.Build(testbed.Options{
			Design: design, Topo: topo, Flows: specs,
			SharedBufferNum: shared, Seed: p.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return net, der, nil
	}

	peakShared := func(net *testbed.Net) int {
		worst := 0
		for s := range net.Switches {
			if hw := net.Switches[s].PoolHighWater(0); hw > worst {
				worst = hw
			}
		}
		return worst
	}

	var rows []SMSRow

	// Per-port pools, derived provisioning. The simulated ring switch
	// instantiates 3 ports (trunk out, trunk rx, host access).
	netPP, der, err := build(0)
	if err != nil {
		return nil, err
	}
	netPP.Run(0, p.Duration)
	lossPP := netPP.Summary(ethernet.ClassTS).LossRate
	perPortTotal := der.Config.BufferNum * 3
	rows = append(rows, SMSRow{
		Architecture: "per-port (TSN-Builder)",
		BufferTotal:  perPortTotal,
		BufferKb:     resource.Buffers(der.Config.BufferNum, 3).Kb(),
		TSLossRate:   lossPP,
		PeakUsage:    peakShared(netPP), // worst single pool
	})

	// Shared pool: first run generously to observe the true concurrent
	// demand, then provision peak + 25 % and verify zero loss.
	probe, _, err := build(perPortTotal)
	if err != nil {
		return nil, err
	}
	probe.Run(0, p.Duration)
	peak := peakShared(probe)
	sharedNum := peak + (peak+3)/4
	netSMS, _, err := build(sharedNum)
	if err != nil {
		return nil, err
	}
	netSMS.Run(0, p.Duration)
	rows = append(rows, SMSRow{
		Architecture: "shared (SMS)",
		BufferTotal:  sharedNum,
		BufferKb:     resource.SharedBuffers(sharedNum).Kb(),
		TSLossRate:   netSMS.Summary(ethernet.ClassTS).LossRate,
		PeakUsage:    peakShared(netSMS),
	})
	return rows, nil
}

// FormatSMS renders the study.
func FormatSMS(rows []SMSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-SMS — buffer architecture ablation (per switch, ring + background)\n")
	fmt.Fprintf(&b, "  %-24s %10s %12s %8s %10s\n", "architecture", "buffers", "BRAM", "TS loss", "peak use")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %10d %10.1fKb %7.2f%% %10d\n",
			r.Architecture, r.BufferTotal, r.BufferKb, 100*r.TSLossRate, r.PeakUsage)
	}
	return b.String()
}
