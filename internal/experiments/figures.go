package experiments

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Fig2 reproduces Fig. 2 of the motivation study: TS-flow latency under
// increasing background bandwidth — (a) BE background, (b) RC
// background — on the Case 1 / Case 2 resource configurations of
// Table I. The expected shape: latency and jitter flat, loss zero,
// identical across both configurations.
func Fig2(p Params, background string, caseCfg int) (*Series, error) {
	cfg := core.PaperCustomizedConfig(1)
	switch caseCfg {
	case 1:
		cfg.QueueDepth, cfg.BufferNum = 16, 128
	case 2:
		cfg.QueueDepth, cfg.BufferNum = 12, 96
	default:
		return nil, fmt.Errorf("experiments: unknown Table I case %d", caseCfg)
	}
	switch background {
	case "BE", "RC":
	default:
		return nil, fmt.Errorf("experiments: unknown background class %q", background)
	}
	s := &Series{
		Name:  fmt.Sprintf("Fig. 2(%s) — TS latency vs %s background (Case %d)", background, background, caseCfg),
		XAxis: background + "(Mbps)",
	}
	sweepMbps := []int{0, 200, 400, 600, 800}
	rows, err := sweep(p, len(sweepMbps), func(i int, rp Params) (Row, error) {
		mbps := sweepMbps[i]
		bs := benchSpec{p: rp, hops: 3, useConfig: &cfg}
		if background == "BE" {
			bs.beMbps = mbps
		} else {
			bs.rcMbps = mbps
		}
		rb, err := buildRing(bs)
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = fmt.Sprintf("%dMbps", mbps)
		row.X = float64(mbps)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}

// Fig7Hops reproduces Fig. 7(a): end-to-end TS latency for flows
// traversing 1..4 switches at the 65 µs slot. Expected shape: mean
// latency ≈ hops × slot, jitter roughly constant.
func Fig7Hops(p Params) (*Series, error) {
	s := &Series{Name: "Fig. 7(a) — E2E latency under different hops", XAxis: "hops"}
	rows, err := sweep(p, 4, func(i int, rp Params) (Row, error) {
		hops := i + 1
		rb, err := buildRing(benchSpec{p: rp, hops: hops})
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = fmt.Sprintf("%d", hops)
		row.X = float64(hops)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}

// Fig7PktSize reproduces Fig. 7(b): latency under different TS packet
// sizes. Expected shape: slight increase with size (serialization).
func Fig7PktSize(p Params) (*Series, error) {
	s := &Series{Name: "Fig. 7(b) — E2E latency under different packet sizes", XAxis: "size(B)"}
	sizes := []int{64, 128, 256, 512, 1024, 1500}
	rows, err := sweep(p, len(sizes), func(i int, rp Params) (Row, error) {
		size := sizes[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3, wireSize: size})
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = fmt.Sprintf("%dB", size)
		row.X = float64(size)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}

// Fig7Slot reproduces Fig. 7(c): latency under different slot sizes.
// Expected shape: mean latency and jitter scale with the slot.
func Fig7Slot(p Params) (*Series, error) {
	s := &Series{Name: "Fig. 7(c) — E2E latency under different time slots", XAxis: "slot(µs)"}
	slots := []sim.Time{65 * sim.Microsecond, 130 * sim.Microsecond,
		260 * sim.Microsecond, 520 * sim.Microsecond}
	rows, err := sweep(p, len(slots), func(i int, rp Params) (Row, error) {
		slot := slots[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3, slot: slot})
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = slot.String()
		row.X = slot.Micros()
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}

// Fig7Background reproduces Fig. 7(d): RC and BE background injected
// simultaneously at equal bandwidth. Expected shape: no effect on TS
// latency or jitter, zero TS loss.
func Fig7Background(p Params) (*Series, error) {
	s := &Series{Name: "Fig. 7(d) — E2E latency under different background flows", XAxis: "each(Mbps)"}
	sweepMbps := []int{0, 100, 200, 300, 400}
	rows, err := sweep(p, len(sweepMbps), func(i int, rp Params) (Row, error) {
		mbps := sweepMbps[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3, rcMbps: mbps, beMbps: mbps})
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = fmt.Sprintf("%dMbps", mbps)
		row.X = float64(mbps)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}

// CommercialVsCustomizedQoS runs the same workload on the commercial
// resource configuration and on the derived customized one — the
// paper's headline QoS-equivalence claim (§IV.C summary).
func CommercialVsCustomizedQoS(p Params) (*Series, error) {
	s := &Series{Name: "QoS equivalence — commercial vs customized resources", XAxis: "config"}
	commercial := core.CommercialProfile()
	configs := []struct {
		label string
		cfg   *core.Config
	}{
		{"commercial", &commercial},
		{"customized", nil},
	}
	rows, err := sweep(p, len(configs), func(i int, rp Params) (Row, error) {
		c := configs[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3, rcMbps: 100, beMbps: 100, useConfig: c.cfg})
		if err != nil {
			return Row{}, err
		}
		row := rb.run(rp, 0)
		row.Label = c.label
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	s.Rows = rows
	return s, nil
}
