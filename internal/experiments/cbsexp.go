package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// CBSRow is one shaping-configuration data point.
type CBSRow struct {
	Config   string
	RCMean   sim.Time
	RCJitter sim.Time
	BEMean   sim.Time
	BEMax    sim.Time
	BEP99    sim.Time
	BELoss   float64
}

// CBSStudy isolates the Egress Sched template's credit-based shapers:
// a bursty rate-constrained flow (32-frame bursts at its reserved
// average rate) shares one egress port with steady best-effort
// traffic. Without CBS the whole RC burst drains at line rate and the
// BE class stalls for the burst duration; with CBS the burst is spread
// at the idle slope, so the BE tail latency collapses — "shapers
// limiting the bandwidth of RC queues for alleviating the traffic
// burst" (§III.A).
func CBSStudy(p Params) ([]CBSRow, error) {
	build := func(rp Params, disableCBS bool) (*testbed.Net, error) {
		topo := topology.Ring(3)
		topo.AttachHost(100, 0) // RC source
		topo.AttachHost(101, 0) // BE source
		topo.AttachHost(102, 1) // sink
		rc := flows.Background(1, ethernet.ClassRC, 100, 102, 10, 200*ethernet.Mbps)
		rc.Burst = 32
		be := flows.Background(2, ethernet.ClassBE, 101, 102, 11, 300*ethernet.Mbps)
		specs := []*flows.Spec{rc, be}
		// A token TS flow keeps the scenario derivable (DeriveConfig
		// requires TS flows for the ITP pass).
		ts := flows.GenerateTS(flows.TSParams{
			Count: 4, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
			Hosts: func(i int) (int, int) { return 100, 102 },
			Seed:  rp.Seed,
		})
		for i, s := range ts {
			s.VID = uint16(100 + i)
		}
		specs = append(specs, ts...)
		if err := core.BindPaths(topo, specs); err != nil {
			return nil, err
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			return nil, err
		}
		der.Plan.Apply(specs)
		cfg := der.Config
		// Bursts of 32 frames need queue/buffer room beyond the TS-only
		// derivation.
		if cfg.QueueDepth < 64 {
			cfg.QueueDepth = 64
		}
		cfg.BufferNum = cfg.QueueDepth * cfg.QueueNum
		design, err := core.BuilderFor(cfg, nil).Build()
		if err != nil {
			return nil, err
		}
		return testbed.Build(testbed.Options{
			Design: design, Topo: topo, Flows: specs,
			DisableCBS: disableCBS, Seed: rp.Seed,
		})
	}

	configs := []struct {
		label   string
		disable bool
	}{
		{"strict priority only", true},
		{"CBS shaped", false},
	}
	return sweep(p, len(configs), func(i int, rp Params) (CBSRow, error) {
		c := configs[i]
		net, err := build(rp, c.disable)
		if err != nil {
			return CBSRow{}, err
		}
		net.Run(0, rp.Duration)
		rc := net.Summary(ethernet.ClassRC)
		be := net.Summary(ethernet.ClassBE)
		return CBSRow{
			Config: c.label,
			RCMean: rc.MeanLatency, RCJitter: rc.Jitter,
			BEMean: be.MeanLatency, BEMax: be.MaxLat, BEP99: be.P99,
			BELoss: be.LossRate,
		}, nil
	})
}

// FormatCBS renders the study.
func FormatCBS(rows []CBSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-CBS — credit-based shaping vs bare strict priority (bursty RC + steady BE)\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %10s %10s %10s\n",
		"config", "RC mean", "RC jitter", "BE mean", "BE p99", "BE max")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %8.1fµs %8.1fµs %8.1fµs %8.1fµs %8.1fµs\n",
			r.Config, r.RCMean.Micros(), r.RCJitter.Micros(),
			r.BEMean.Micros(), r.BEP99.Micros(), r.BEMax.Micros())
	}
	return b.String()
}
