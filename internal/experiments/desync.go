package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// DesyncRow is one clock-offset data point.
type DesyncRow struct {
	Offset     sim.Time // forced clock error on every other switch
	Mean       sim.Time
	Jitter     sim.Time
	Max        sim.Time
	LossRate   float64
	BoundBreak bool // max latency beyond Eq. (1)'s (hop+1)·slot
	HighWater  int  // worst TS queue occupancy observed
}

// DesyncStudy quantifies what the Time Sync template buys: CQF's
// determinism (Eq. (1)) rests on neighboring switches agreeing on slot
// boundaries. The study forces a static clock error onto every other
// switch in the ring and measures the TS flows. Expected shape: with
// perfect sync the jitter is the in-slot phase spread; an offset that
// pushes in-flight frames across a neighbor's slot boundary splits them
// between two departure slots, inflating jitter and bunching two slots
// of traffic into one queue (visible as a higher queue high-water).
// Loss appears only once that bunching exceeds the provisioned depth —
// the margin gPTP's sub-50 ns precision preserves by three orders of
// magnitude.
func DesyncStudy(p Params) ([]DesyncRow, error) {
	slot := 65 * sim.Microsecond
	offsets := []sim.Time{0, sim.Microsecond, 8 * sim.Microsecond,
		16 * sim.Microsecond, 32 * sim.Microsecond, 65 * sim.Microsecond}
	return sweep(p, len(offsets), func(i int, rp Params) (DesyncRow, error) {
		offset := offsets[i]
		rb, err := buildRing(benchSpec{p: rp, hops: 3})
		if err != nil {
			return DesyncRow{}, err
		}
		// Desynchronize every other switch.
		for s, sw := range rb.Net.Switches {
			if s%2 == 1 {
				sw.Clock = clock.New(0, offset)
			}
		}
		row := rb.run(rp, 0)
		bound := 4 * slot // (hops+1)·slot for 3-switch paths
		return DesyncRow{
			Offset: offset,
			Mean:   row.Mean, Jitter: row.Jitter, Max: row.Max,
			LossRate:   row.LossRate,
			BoundBreak: row.Max > bound+2*sim.Microsecond,
			HighWater:  rb.Net.MaxQueueHighWater(),
		}, nil
	})
}

// FormatDesync renders the study.
func FormatDesync(rows []DesyncRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-DESYNC — CQF under clock desynchronization (ring, 3-switch paths, slot 65µs)\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s %10s %8s %8s %10s\n",
		"offset", "mean(µs)", "jitter(µs)", "max(µs)", "loss", "bounds", "highwater")
	for _, r := range rows {
		ok := "held"
		if r.BoundBreak {
			ok = "BROKEN"
		}
		fmt.Fprintf(&b, "  %-10v %10.1f %10.2f %10.1f %7.2f%% %8s %10d\n",
			r.Offset, r.Mean.Micros(), r.Jitter.Micros(), r.Max.Micros(),
			100*r.LossRate, ok, r.HighWater)
	}
	return b.String()
}
