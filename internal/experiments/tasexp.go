package experiments

import (
	"fmt"
	"strings"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tas"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// TASRow compares one gate-control mechanism.
type TASRow struct {
	Mechanism   string
	Mean        sim.Time
	Jitter      sim.Time
	Max         sim.Time
	LossRate    float64
	GateEntries int
	GateKb      float64 // gate tables across the ring's enabled ports
}

// TASvsCQF runs the same TS workload under the paper's 2-entry CQF
// gate configuration and under a synthesized 802.1Qbv TAS schedule —
// the gate-size ablation of the set_gate_tbl customization API. The
// expected trade: TAS removes the per-hop slot quantization (mean
// latency drops from hops×65 µs to a few µs per hop, jitter to nearly
// zero) while the gate tables grow from 2 entries to one-plus entries
// per scheduled window.
func TASvsCQF(p Params) ([]TASRow, error) {
	build := func(rp Params) (*topology.Topology, []*flows.Spec, error) {
		topo := topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
		}
		specs := flows.GenerateTS(flows.TSParams{
			Count:    rp.TSFlows,
			Period:   10 * sim.Millisecond,
			WireSize: 64,
			VID:      1,
			Hosts: func(i int) (int, int) {
				src := i % 6
				return 100 + src, 100 + (src+2)%6
			},
			Seed: rp.Seed,
		})
		for i, s := range specs {
			s.VID = uint16(1 + i%4000)
		}
		if err := core.BindPaths(topo, specs); err != nil {
			return nil, nil, err
		}
		return topo, specs, nil
	}

	runCQF := func(rp Params) (TASRow, error) {
		topo, specs, err := build(rp)
		if err != nil {
			return TASRow{}, err
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			return TASRow{}, err
		}
		der.Plan.Apply(specs)
		design, err := core.BuilderFor(der.Config, nil).Build()
		if err != nil {
			return TASRow{}, err
		}
		net, err := testbed.Build(testbed.Options{Design: design, Topo: topo, Flows: specs, Seed: rp.Seed})
		if err != nil {
			return TASRow{}, err
		}
		net.Run(0, rp.Duration)
		s := net.Summary(ethernet.ClassTS)
		return TASRow{
			Mechanism: "CQF (gate_size=2)",
			Mean:      s.MeanLatency, Jitter: s.Jitter, Max: s.MaxLat, LossRate: s.LossRate,
			GateEntries: 2,
			GateKb:      resource.GateTbl(2, 8, topo.EnabledTSNPorts).Kb(),
		}, nil
	}

	runTAS := func(rp Params) (TASRow, error) {
		topo, specs, err := build(rp)
		if err != nil {
			return TASRow{}, err
		}
		// No background here, so the guard band only needs to absorb a
		// TS frame.
		sch, err := tas.Synthesize(specs, topo, tas.Options{MaxFrameBytes: 64})
		if err != nil {
			return TASRow{}, err
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			return TASRow{}, err
		}
		cfg := der.Config
		if sch.MaxGateEntries > cfg.GateSize {
			cfg.GateSize = sch.MaxGateEntries
		}
		design, err := core.BuilderFor(cfg, nil).Build()
		if err != nil {
			return TASRow{}, err
		}
		net, err := testbed.Build(testbed.Options{Design: design, Topo: topo, Flows: specs, Seed: rp.Seed})
		if err != nil {
			return TASRow{}, err
		}
		if err := net.InstallTAS(sch); err != nil {
			return TASRow{}, err
		}
		sch.Apply(specs)
		net.Run(0, rp.Duration)
		s := net.Summary(ethernet.ClassTS)
		return TASRow{
			Mechanism: fmt.Sprintf("TAS (gate_size=%d)", sch.MaxGateEntries),
			Mean:      s.MeanLatency, Jitter: s.Jitter, Max: s.MaxLat, LossRate: s.LossRate,
			GateEntries: sch.MaxGateEntries,
			GateKb:      resource.GateTbl(sch.MaxGateEntries, 8, topo.EnabledTSNPorts).Kb(),
		}, nil
	}

	return sweep(p, 2, func(i int, rp Params) (TASRow, error) {
		if i == 0 {
			return runCQF(rp)
		}
		return runTAS(rp)
	})
}

// FormatTAS renders the comparison.
func FormatTAS(rows []TASRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E-TAS — gate mechanism ablation (ring, 3-switch paths, no background)\n")
	fmt.Fprintf(&b, "  %-22s %10s %10s %10s %8s %8s %10s\n",
		"mechanism", "mean(µs)", "jitter(µs)", "max(µs)", "loss", "entries", "gate BRAM")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %10.1f %10.2f %10.1f %7.2f%% %8d %8.0fKb\n",
			r.Mechanism, r.Mean.Micros(), r.Jitter.Micros(), r.Max.Micros(),
			100*r.LossRate, r.GateEntries, r.GateKb)
	}
	return b.String()
}
