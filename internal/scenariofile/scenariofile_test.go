package scenariofile

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

const sampleDoc = `{
  "topology": "ring",
  "switches": 6,
  "slot_us": 65,
  "hosts": {"plc1": 0, "plc2": 2, "drive1": 4},
  "flows": [
    {"class": "TS", "count": 12, "period_us": 10000, "deadline_us": 2000,
     "src_hosts": ["plc1", "plc2"], "dst_hosts": ["drive1"]},
    {"class": "RC", "src": "plc1", "dst": "drive1", "rate_mbps": 100},
    {"class": "BE", "src": "plc2", "dst": "drive1", "rate_mbps": 50, "size_b": 512}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	topo, specs, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.N != 6 || topo.EnabledTSNPorts != 1 {
		t.Fatalf("topo = %d/%d", topo.N, topo.EnabledTSNPorts)
	}
	if len(specs) != 14 {
		t.Fatalf("specs = %d, want 14", len(specs))
	}
	ts, rc, be := 0, 0, 0
	for _, s := range specs {
		if len(s.Path) == 0 {
			t.Fatalf("flow %d path not bound", s.ID)
		}
		switch s.Class {
		case ethernet.ClassTS:
			ts++
			if s.Period != 10*sim.Millisecond || s.Deadline != 2*sim.Millisecond || s.WireSize != 64 {
				t.Fatalf("TS spec = %+v", s)
			}
		case ethernet.ClassRC:
			rc++
			if s.Rate != 100*ethernet.Mbps || s.WireSize != 1024 {
				t.Fatalf("RC spec = %+v", s)
			}
		case ethernet.ClassBE:
			be++
			if s.WireSize != 512 {
				t.Fatalf("BE spec = %+v", s)
			}
		}
	}
	if ts != 12 || rc != 1 || be != 1 {
		t.Fatalf("counts = %d/%d/%d", ts, rc, be)
	}
}

func TestScenarioDerives(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.SlotSize != 65*sim.Microsecond {
		t.Fatalf("slot = %v", sc.SlotSize)
	}
	der, err := core.DeriveConfig(sc)
	if err != nil {
		t.Fatal(err)
	}
	if der.Config.PortNum != 1 || der.Config.UnicastSize != 14 {
		t.Fatalf("derived = %+v", der.Config)
	}
}

func TestSrcDstCycling(t *testing.T) {
	f, _ := Parse(strings.NewReader(sampleDoc))
	_, specs, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	// TS flows alternate plc1/plc2 as sources.
	if specs[0].SrcHost == specs[1].SrcHost {
		t.Fatal("sources did not cycle")
	}
	if specs[0].SrcHost != specs[2].SrcHost {
		t.Fatal("cycle period wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`{`,                                // truncated
		`{"topology":"ring","extra":true}`, // unknown field
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no hosts", `{"topology":"ring","switches":3,"flows":[]}`},
		{"bad topology", `{"topology":"mesh","switches":3,"hosts":{"a":0},
			"flows":[{"class":"TS","src":"a","dst":"a","period_us":1000}]}`},
		{"bad switch index", `{"topology":"ring","switches":3,"hosts":{"a":9},
			"flows":[{"class":"TS","src":"a","dst":"a","period_us":1000}]}`},
		{"unknown host", `{"topology":"ring","switches":3,"hosts":{"a":0},
			"flows":[{"class":"TS","src":"a","dst":"zz","period_us":1000}]}`},
		{"unknown class", `{"topology":"ring","switches":3,"hosts":{"a":0},
			"flows":[{"class":"XX","src":"a","dst":"a"}]}`},
		{"no flows", `{"topology":"ring","switches":3,"hosts":{"a":0},"flows":[]}`},
		{"TS without period", `{"topology":"ring","switches":3,"hosts":{"a":0},
			"flows":[{"class":"TS","src":"a","dst":"a"}]}`},
		{"RC without rate", `{"topology":"ring","switches":3,"hosts":{"a":0},
			"flows":[{"class":"RC","src":"a","dst":"a"}]}`},
		{"flow without src", `{"topology":"ring","switches":3,"hosts":{"a":0},
			"flows":[{"class":"TS","dst":"a","period_us":1000}]}`},
		{"small star", `{"topology":"star","switches":1,"hosts":{"a":0},
			"flows":[{"class":"TS","src":"a","dst":"a","period_us":1000}]}`},
	}
	for _, c := range cases {
		f, err := Parse(strings.NewReader(c.doc))
		if err != nil {
			t.Errorf("%s: parse failed: %v", c.name, err)
			continue
		}
		if _, _, err := f.Build(); err == nil {
			t.Errorf("%s: Build accepted invalid document", c.name)
		}
	}
}

func TestStarTopologyFile(t *testing.T) {
	doc := `{"topology":"star","switches":4,"hosts":{"a":1,"b":3},
		"flows":[{"class":"TS","src":"a","dst":"b","period_us":2000}]}`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	topo, specs, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind.String() != "star" || topo.N != 4 {
		t.Fatalf("topo = %+v", topo)
	}
	if len(specs[0].Path) != 3 { // child → core → child
		t.Fatalf("path = %v", specs[0].Path)
	}
}

func TestBurstAndAccessRate(t *testing.T) {
	doc := `{"topology":"ring","switches":3,"access_rate_mbps":100,
		"hosts":{"a":0,"b":1},
		"flows":[
			{"class":"TS","src":"a","dst":"b","period_us":10000},
			{"class":"RC","src":"a","dst":"b","rate_mbps":50,"burst":16}
		]}`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.AccessRate != 100*ethernet.Mbps {
		t.Fatalf("AccessRate = %d", sc.AccessRate)
	}
	var rc *struct{ burst int }
	for _, s := range sc.Flows {
		if s.Class == ethernet.ClassRC {
			rc = &struct{ burst int }{s.Burst}
		}
	}
	if rc == nil || rc.burst != 16 {
		t.Fatalf("RC burst = %+v", rc)
	}
	// The scenario must still derive (feasibility loop engages).
	if _, err := core.DeriveConfig(sc); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTreeTopologyFile(t *testing.T) {
	doc := `{"topology":"tree","spines":2,"leaves":2,"hosts":{"a":2,"b":5},
		"flows":[{"class":"TS","src":"a","dst":"b","period_us":2000}]}`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	topo, specs, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind.String() != "tree" || topo.N != 7 {
		t.Fatalf("topo = %v/%d", topo.Kind, topo.N)
	}
	if len(specs[0].Path) != 5 { // leaf→spine→root→spine→leaf
		t.Fatalf("path = %v", specs[0].Path)
	}
	// Missing spines rejected.
	bad, _ := Parse(strings.NewReader(`{"topology":"tree","hosts":{"a":0},
		"flows":[{"class":"TS","src":"a","dst":"a","period_us":1000}]}`))
	if _, _, err := bad.Build(); err == nil {
		t.Fatal("tree without spines accepted")
	}
}
