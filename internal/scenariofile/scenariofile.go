// Package scenariofile defines the on-disk JSON description of an
// application scenario — the input artifact a plant engineer would
// hand to the tsnbuild tool: topology shape, end-device placement and
// flow features. It converts the declarative form into the topology
// and flow specs the core derivation consumes.
package scenariofile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// File is the root JSON document.
type File struct {
	// Topology: "star", "ring", "linear" or "tree".
	Topology string `json:"topology"`
	// Switches is the node count (ring/linear) or child count + 1
	// (star).
	Switches int `json:"switches"`
	// Spines/Leaves shape the "tree" topology.
	Spines int `json:"spines,omitempty"`
	Leaves int `json:"leaves,omitempty"`
	// Hosts places end devices: host ID → switch index. Host IDs must
	// be unique.
	Hosts map[string]int `json:"hosts"`
	// SlotUs is the CQF slot in µs (default 65).
	SlotUs int `json:"slot_us"`
	// AccessRateMbps, when positive, is the field-device link rate;
	// DeriveConfig widens the slot if the drain constraint demands it.
	AccessRateMbps int `json:"access_rate_mbps,omitempty"`
	// Flows lists explicit flows and/or generated groups.
	Flows []FlowEntry `json:"flows"`
}

// FlowEntry is either one explicit flow (Count == 0 or 1) or a
// generated group of Count flows cycling over the listed hosts.
type FlowEntry struct {
	// Class: "TS", "RC" or "BE".
	Class string `json:"class"`
	// Count generates this many flows (default 1).
	Count int `json:"count"`
	// Src/Dst are host IDs; for generated groups they may be omitted
	// when SrcHosts/DstHosts cycles are given.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// SrcHosts/DstHosts cycle across generated flows.
	SrcHosts []string `json:"src_hosts,omitempty"`
	DstHosts []string `json:"dst_hosts,omitempty"`
	// PeriodUs is the TS period in µs.
	PeriodUs int `json:"period_us,omitempty"`
	// DeadlineUs is the TS deadline in µs (0 = no deadline check).
	DeadlineUs int `json:"deadline_us,omitempty"`
	// SizeB is the on-wire frame size (default 64 for TS, 1024 for
	// RC/BE).
	SizeB int `json:"size_b,omitempty"`
	// RateMbps is the RC/BE bandwidth.
	RateMbps int `json:"rate_mbps,omitempty"`
	// Burst is the RC/BE frames emitted back-to-back per tick.
	Burst int `json:"burst,omitempty"`
}

// Load reads and parses a scenario file.
func Load(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse decodes a scenario document.
func Parse(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file File
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("scenariofile: %w", err)
	}
	return &file, nil
}

// hostIDs assigns stable integer IDs to the named hosts.
type hostIDs struct {
	byName map[string]int
}

func (h *hostIDs) id(name string) (int, error) {
	id, ok := h.byName[name]
	if !ok {
		return 0, fmt.Errorf("scenariofile: unknown host %q", name)
	}
	return id, nil
}

// Build materializes the scenario: the topology with hosts attached and
// the flow specs with paths bound.
func (f *File) Build() (*topology.Topology, []*flows.Spec, error) {
	if len(f.Hosts) == 0 {
		return nil, nil, fmt.Errorf("scenariofile: no hosts")
	}
	var topo *topology.Topology
	switch f.Topology {
	case "star":
		if f.Switches < 2 {
			return nil, nil, fmt.Errorf("scenariofile: star needs >= 2 switches")
		}
		topo = topology.Star(f.Switches - 1)
	case "ring":
		topo = topology.Ring(f.Switches)
	case "linear":
		topo = topology.Linear(f.Switches)
	case "tree":
		if f.Spines < 1 {
			return nil, nil, fmt.Errorf("scenariofile: tree needs spines >= 1")
		}
		topo = topology.Tree(f.Spines, f.Leaves)
	default:
		return nil, nil, fmt.Errorf("scenariofile: unknown topology %q", f.Topology)
	}

	// Deterministic host numbering: sort names.
	names := make([]string, 0, len(f.Hosts))
	for name := range f.Hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	ids := &hostIDs{byName: make(map[string]int)}
	for i, name := range names {
		sw := f.Hosts[name]
		if sw < 0 || sw >= topo.N {
			return nil, nil, fmt.Errorf("scenariofile: host %q on invalid switch %d", name, sw)
		}
		id := 100 + i
		ids.byName[name] = id
		topo.AttachHost(id, sw)
	}

	var specs []*flows.Spec
	nextID := uint32(1)
	nextVID := uint16(1)
	for ei, e := range f.Flows {
		count := e.Count
		if count <= 0 {
			count = 1
		}
		srcs, err := hostCycle(ids, e.Src, e.SrcHosts)
		if err != nil {
			return nil, nil, fmt.Errorf("scenariofile: flows[%d]: %w", ei, err)
		}
		dsts, err := hostCycle(ids, e.Dst, e.DstHosts)
		if err != nil {
			return nil, nil, fmt.Errorf("scenariofile: flows[%d]: %w", ei, err)
		}
		for i := 0; i < count; i++ {
			spec := &flows.Spec{
				ID:      nextID,
				SrcHost: srcs[i%len(srcs)],
				DstHost: dsts[i%len(dsts)],
				VID:     nextVID,
			}
			nextID++
			nextVID = nextVID%4000 + 1
			switch e.Class {
			case "TS":
				spec.Class = ethernet.ClassTS
				spec.Period = sim.Time(e.PeriodUs) * sim.Microsecond
				spec.Deadline = sim.Time(e.DeadlineUs) * sim.Microsecond
				spec.WireSize = e.SizeB
				if spec.WireSize == 0 {
					spec.WireSize = 64
				}
			case "RC", "BE":
				if e.Class == "RC" {
					spec.Class = ethernet.ClassRC
				} else {
					spec.Class = ethernet.ClassBE
				}
				spec.Rate = ethernet.Rate(e.RateMbps) * ethernet.Mbps
				spec.Burst = e.Burst
				spec.WireSize = e.SizeB
				if spec.WireSize == 0 {
					spec.WireSize = 1024
				}
			default:
				return nil, nil, fmt.Errorf("scenariofile: flows[%d]: unknown class %q", ei, e.Class)
			}
			spec.PCP = flows.PCPFor(spec.Class)
			if err := spec.Validate(); err != nil {
				return nil, nil, fmt.Errorf("scenariofile: flows[%d]: %w", ei, err)
			}
			specs = append(specs, spec)
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("scenariofile: no flows")
	}
	if err := core.BindPaths(topo, specs); err != nil {
		return nil, nil, err
	}
	return topo, specs, nil
}

// Scenario converts the file into a core.Scenario ready for
// DeriveConfig.
func (f *File) Scenario() (core.Scenario, error) {
	topo, specs, err := f.Build()
	if err != nil {
		return core.Scenario{}, err
	}
	slot := sim.Time(f.SlotUs) * sim.Microsecond
	return core.Scenario{
		Topo: topo, Flows: specs, SlotSize: slot,
		AccessRate: ethernet.Rate(f.AccessRateMbps) * ethernet.Mbps,
	}, nil
}

func hostCycle(ids *hostIDs, single string, many []string) ([]int, error) {
	names := many
	if len(names) == 0 {
		if single == "" {
			return nil, fmt.Errorf("no hosts given")
		}
		names = []string{single}
	}
	out := make([]int, len(names))
	for i, n := range names {
		id, err := ids.id(n)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}
