package gptp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// MsgType enumerates the PTP message types the model exchanges.
type MsgType uint8

// Message types (values follow IEEE 1588's messageType field).
const (
	MsgSync       MsgType = 0x0
	MsgPdelayReq  MsgType = 0x2
	MsgPdelayResp MsgType = 0x3
	MsgFollowUp   MsgType = 0x8
	MsgAnnounce   MsgType = 0xB
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgSync:
		return "Sync"
	case MsgPdelayReq:
		return "Pdelay_Req"
	case MsgPdelayResp:
		return "Pdelay_Resp"
	case MsgFollowUp:
		return "Follow_Up"
	case MsgAnnounce:
		return "Announce"
	}
	return fmt.Sprintf("MsgType(%#x)", uint8(t))
}

// PriorityVector is the BMCA comparison key (a condensed form of
// 802.1AS's systemIdentity): lower compares better.
type PriorityVector struct {
	// Priority1 is the administrative preference (lower wins).
	Priority1 uint8
	// ClockClass describes traceability (lower is better; 6 = primary
	// reference, 248 = default free-running).
	ClockClass uint8
	// ClockID breaks ties (derived from the MAC in hardware).
	ClockID uint64
}

// Less reports whether p outranks q in the BMCA ordering.
func (p PriorityVector) Less(q PriorityVector) bool {
	if p.Priority1 != q.Priority1 {
		return p.Priority1 < q.Priority1
	}
	if p.ClockClass != q.ClockClass {
		return p.ClockClass < q.ClockClass
	}
	return p.ClockID < q.ClockID
}

// Message is one PTP protocol data unit.
type Message struct {
	Type MsgType
	Seq  uint16
	// OriginTS carries the precise origin timestamp (Follow_Up) or the
	// relevant event timestamp (Pdelay_Resp's requestReceiptTimestamp).
	OriginTS sim.Time
	// Correction accumulates residence/turnaround time in ns.
	Correction int64
	// Priority is the announced system identity (Announce only).
	Priority PriorityVector
	// Steps is the announced stepsRemoved (Announce only).
	Steps uint16
}

const msgBodyBytes = 1 + 1 + 2 + 8 + 8 + 1 + 1 + 8 + 2 // version+type+seq+ts+corr+prio1+class+id+steps

// Marshal encodes the message into an Ethernet frame addressed to the
// PTP multicast range, as gPTP transports event messages.
func (m *Message) Marshal(src ethernet.MAC) *ethernet.Frame {
	body := make([]byte, msgBodyBytes)
	body[0] = 2 // PTP version
	body[1] = byte(m.Type)
	binary.BigEndian.PutUint16(body[2:], m.Seq)
	binary.BigEndian.PutUint64(body[4:], uint64(m.OriginTS))
	binary.BigEndian.PutUint64(body[12:], uint64(m.Correction))
	body[20] = m.Priority.Priority1
	body[21] = m.Priority.ClockClass
	binary.BigEndian.PutUint64(body[22:], m.Priority.ClockID)
	binary.BigEndian.PutUint16(body[30:], m.Steps)
	return &ethernet.Frame{
		Dst:       ethernet.MAC{0x01, 0x80, 0xC2, 0x00, 0x00, 0x0E}, // 802.1AS link-local
		Src:       src,
		VID:       0,
		PCP:       7,
		EtherType: ethernet.TypePTP,
		Payload:   body,
	}
}

// errNotPTP reports a frame that is not a PTP message.
var errNotPTP = errors.New("gptp: not a PTP frame")

// UnmarshalMessage decodes a PTP frame produced by Marshal.
func UnmarshalMessage(f *ethernet.Frame) (*Message, error) {
	if f.EtherType != ethernet.TypePTP {
		return nil, errNotPTP
	}
	if len(f.Payload) < msgBodyBytes {
		return nil, fmt.Errorf("gptp: truncated PTP body (%d bytes)", len(f.Payload))
	}
	b := f.Payload
	if b[0] != 2 {
		return nil, fmt.Errorf("gptp: unsupported PTP version %d", b[0])
	}
	m := &Message{
		Type:       MsgType(b[1]),
		Seq:        binary.BigEndian.Uint16(b[2:]),
		OriginTS:   sim.Time(binary.BigEndian.Uint64(b[4:])),
		Correction: int64(binary.BigEndian.Uint64(b[12:])),
		Priority: PriorityVector{
			Priority1:  b[20],
			ClockClass: b[21],
			ClockID:    binary.BigEndian.Uint64(b[22:]),
		},
		Steps: binary.BigEndian.Uint16(b[30:]),
	}
	switch m.Type {
	case MsgSync, MsgPdelayReq, MsgPdelayResp, MsgFollowUp, MsgAnnounce:
		return m, nil
	}
	return nil, fmt.Errorf("gptp: unknown message type %#x", b[1])
}
