package gptp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
)

// FuzzUnmarshalMessage hardens the PTP codec against arbitrary payload
// bytes: it must never panic, and every successfully decoded message
// must re-encode to a frame that decodes back to the same message
// (decode/encode/decode fixed point).
func FuzzUnmarshalMessage(f *testing.F) {
	for _, m := range []*Message{
		{Type: MsgSync, Seq: 1, OriginTS: 12_345},
		{Type: MsgFollowUp, Seq: 2, OriginTS: 99, Correction: -40},
		{Type: MsgAnnounce, Seq: 3, Priority: PriorityVector{Priority1: 100, ClockClass: 6, ClockID: 7}, Steps: 2},
		{Type: MsgPdelayReq, Seq: 4},
		{Type: MsgPdelayResp, Seq: 5, OriginTS: 77},
	} {
		f.Add(m.Marshal(ethernet.SwitchMAC(1)).Payload)
	}
	f.Add([]byte{})
	f.Add(make([]byte, msgBodyBytes))

	f.Fuzz(func(t *testing.T, payload []byte) {
		frame := &ethernet.Frame{EtherType: ethernet.TypePTP, Payload: payload}
		m, err := UnmarshalMessage(frame)
		if err != nil {
			return
		}
		re, err := UnmarshalMessage(m.Marshal(ethernet.SwitchMAC(2)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *re != *m {
			t.Fatalf("decode/encode/decode not a fixed point:\n%+v\n%+v", m, re)
		}
	})
}
