package gptp

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// This file implements a condensed Best Master Clock Algorithm: every
// time-aware system floods Announce messages carrying its priority
// vector; the best vector wins and the sync spanning tree is rebuilt
// toward the winner. Failing the current grandmaster triggers
// re-election and the survivors re-home automatically, because sync
// transmission checks port roles at send time.

// SetPriority assigns node n's announced system identity.
func (d *Domain) SetPriority(n *Node, pv PriorityVector) { n.priority = pv }

// Priority returns node n's announced system identity.
func (n *Node) Priority() PriorityVector { return n.priority }

// Alive reports whether the node is still operating.
func (n *Node) Alive() bool { return n.alive }

// Elect runs the BMCA over the alive nodes: Announce messages flood the
// link graph (marshaled and unmarshaled at every hop, as on the wire)
// until every node agrees on the best priority vector. It returns the
// winner without changing the domain; use ElectAndAssume to also
// rebuild the tree.
func (d *Domain) Elect() (*Node, error) {
	best := make(map[*Node]PriorityVector)
	var any bool
	for _, n := range d.nodes {
		if !n.alive {
			continue
		}
		best[n] = n.priority
		any = true
	}
	if !any {
		return nil, fmt.Errorf("gptp: no alive nodes to elect from")
	}
	// Flood until no vector improves (at most diameter rounds).
	for changed := true; changed; {
		changed = false
		for _, n := range d.nodes {
			if !n.alive {
				continue
			}
			for _, p := range n.ports {
				peer := p.peer.owner
				if !peer.alive {
					continue
				}
				// Announce from n to peer, over the codec.
				msg := &Message{Type: MsgAnnounce, Priority: best[n]}
				frame := msg.Marshal(d.srcMAC(n))
				got, err := UnmarshalMessage(frame)
				if err != nil {
					return nil, err
				}
				n.announceTx++
				peer.announceRx++
				if got.Priority.Less(best[peer]) {
					best[peer] = got.Priority
					changed = true
				}
			}
		}
	}
	// The winner is the node whose own identity equals the agreed best.
	var agreed *PriorityVector
	for _, pv := range best {
		pv := pv
		if agreed == nil || pv.Less(*agreed) {
			agreed = &pv
		}
	}
	for _, n := range d.nodes {
		if n.alive && n.priority == *agreed {
			// All alive nodes must have converged onto this vector.
			for _, pv := range best {
				if pv != *agreed {
					return nil, fmt.Errorf("gptp: election did not converge (partitioned domain?)")
				}
			}
			return n, nil
		}
	}
	return nil, fmt.Errorf("gptp: agreed vector %+v has no owner", *agreed)
}

// ElectAndAssume elects the best master and rebuilds the sync tree
// toward it.
func (d *Domain) ElectAndAssume() (*Node, error) {
	gm, err := d.Elect()
	if err != nil {
		return nil, err
	}
	if err := d.assume(gm); err != nil {
		return nil, err
	}
	return gm, nil
}

// assume rebuilds the spanning tree toward gm, skipping dead nodes.
func (d *Domain) assume(gm *Node) error {
	if !gm.alive {
		return fmt.Errorf("gptp: grandmaster %d is dead", gm.ID)
	}
	prev := make(map[*Node]*Port, len(d.nodes))
	for _, n := range d.nodes {
		prev[n] = n.upstream
		n.upstream = nil
	}
	visited := map[*Node]bool{gm: true}
	queue := []*Node{gm}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range n.ports {
			child := p.peer.owner
			if !child.alive || visited[child] {
				continue
			}
			visited[child] = true
			child.upstream = p.peer
			queue = append(queue, child)
		}
	}
	for _, n := range d.nodes {
		if n.alive && !visited[n] {
			return fmt.Errorf("gptp: node %d unreachable from new grandmaster %d", n.ID, gm.ID)
		}
	}
	d.gm = gm
	for _, n := range d.nodes {
		if n.upstream != prev[n] {
			d.metRoleChanges.Inc()
		}
	}
	return nil
}

// FailNode takes n out of service: it stops sending and processing
// sync, its clock free-runs (holdover), and if it was the grandmaster a
// new one is elected and the survivors re-home.
func (d *Domain) FailNode(n *Node) error {
	n.alive = false
	if d.gm != n {
		// A non-GM failure only needs a tree rebuild if it was a
		// transit node.
		return d.assume(d.gm)
	}
	_, err := d.ElectAndAssume()
	return err
}

// AnnounceCounts returns (sent, received) Announce message counters for
// node n.
func (n *Node) AnnounceCounts() (uint64, uint64) { return n.announceTx, n.announceRx }

// KillNode silently takes n out of service without notifying the
// domain — the crash case. Detection is the watchdog's job (see
// EnableAutoFailover); contrast with FailNode, which models an
// administrative shutdown that triggers immediate re-election.
func (d *Domain) KillNode(n *Node) { n.alive = false }

// EnableAutoFailover arms a sync-receipt watchdog, the 802.1AS
// syncReceiptTimeout mechanism: every interval, any alive non-GM node
// that has not received a sync correction for the whole interval
// declares the upstream path dead. If the grandmaster itself died the
// domain re-elects; survivors re-home either way. interval should be
// several sync intervals (802.1AS defaults to 3).
func (d *Domain) EnableAutoFailover(interval sim.Time) {
	if interval <= 0 {
		panic("gptp: non-positive failover interval")
	}
	var watchdog func(*sim.Engine)
	watchdog = func(e *sim.Engine) {
		d.checkSyncReceipt(e.Now(), interval)
		e.After(interval, "sync-watchdog", watchdog)
	}
	d.engine.After(interval, "sync-watchdog", watchdog)
}

// checkSyncReceipt performs one watchdog pass.
func (d *Domain) checkSyncReceipt(now sim.Time, interval sim.Time) {
	if d.gm == nil {
		return
	}
	if !d.gm.alive {
		// GM known-dead (e.g. killed silently): re-elect.
		if _, err := d.ElectAndAssume(); err == nil {
			return
		}
	}
	stale := false
	for _, n := range d.nodes {
		if n == d.gm || !n.alive {
			continue
		}
		if n.synced && now-n.lastCorrAt > interval {
			stale = true
			break
		}
	}
	if !stale {
		return
	}
	// Sync stopped flowing somewhere: if the GM stopped responding the
	// election excludes it; a transit failure just rebuilds the tree.
	if _, err := d.ElectAndAssume(); err != nil {
		// Partitioned: keep the current tree among reachable nodes.
		_ = d.assume(d.gm)
	}
}
