package gptp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestMessageCodecRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgSync, MsgFollowUp, MsgPdelayReq, MsgPdelayResp, MsgAnnounce} {
		m := &Message{
			Type: typ, Seq: 1234, OriginTS: 987654321,
			Correction: -42,
			Priority:   PriorityVector{Priority1: 128, ClockClass: 6, ClockID: 77},
			Steps:      3,
		}
		f := m.Marshal(ethernet.SwitchMAC(1))
		if f.EtherType != ethernet.TypePTP || f.PCP != 7 {
			t.Fatalf("%v: frame header %+v", typ, f)
		}
		got, err := UnmarshalMessage(f)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if *got != *m {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", typ, got, m)
		}
	}
}

func TestMessageCodecErrors(t *testing.T) {
	if _, err := UnmarshalMessage(&ethernet.Frame{EtherType: ethernet.TypeTSN}); err == nil {
		t.Error("non-PTP frame accepted")
	}
	if _, err := UnmarshalMessage(&ethernet.Frame{EtherType: ethernet.TypePTP, Payload: []byte{2, 0}}); err == nil {
		t.Error("truncated body accepted")
	}
	bad := (&Message{Type: MsgSync}).Marshal(ethernet.SwitchMAC(0))
	bad.Payload[0] = 9 // wrong version
	if _, err := UnmarshalMessage(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad2 := (&Message{Type: MsgSync}).Marshal(ethernet.SwitchMAC(0))
	bad2.Payload[1] = 0x7 // unknown type
	if _, err := UnmarshalMessage(bad2); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{MsgSync, MsgFollowUp, MsgPdelayReq, MsgPdelayResp, MsgAnnounce} {
		if typ.String() == "" {
			t.Fatal("empty type name")
		}
	}
	if MsgType(0x7).String() != "MsgType(0x7)" {
		t.Fatalf("unknown type formatting: %s", MsgType(0x7))
	}
}

func TestPriorityVectorOrdering(t *testing.T) {
	a := PriorityVector{Priority1: 128, ClockClass: 6, ClockID: 5}
	b := PriorityVector{Priority1: 128, ClockClass: 6, ClockID: 9}
	c := PriorityVector{Priority1: 128, ClockClass: 7, ClockID: 1}
	d := PriorityVector{Priority1: 200, ClockClass: 6, ClockID: 1}
	if !a.Less(b) || !a.Less(c) || !a.Less(d) || !b.Less(c) || !c.Less(d) {
		t.Fatal("ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("irreflexivity broken")
	}
}

// electRing builds a 6-node ring with node wantGM given the best
// identity.
func electRing(t *testing.T, wantGM int) (*sim.Engine, *Domain) {
	t.Helper()
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	nodes := make([]*Node, 6)
	for i := range nodes {
		nodes[i] = d.AddNode(i, clock.PPB(i*9_000-20_000), sim.Time(i)*30*sim.Microsecond)
	}
	for i := range nodes {
		d.Connect(nodes[i], nodes[(i+1)%6], 300*sim.Nanosecond)
	}
	d.SetPriority(nodes[wantGM], PriorityVector{Priority1: 100, ClockClass: 6, ClockID: 42})
	return e, d
}

func TestElection(t *testing.T) {
	_, d := electRing(t, 3)
	gm, err := ElectAndAssumeForTest(d)
	if err != nil {
		t.Fatal(err)
	}
	if gm.ID != 3 {
		t.Fatalf("elected %d, want 3", gm.ID)
	}
	if d.Grandmaster() != gm {
		t.Fatal("domain grandmaster not updated")
	}
	// Every other node has an upstream port.
	for _, n := range d.Nodes() {
		if n != gm && n.upstream == nil {
			t.Fatalf("node %d has no upstream", n.ID)
		}
	}
	// Announce messages actually flowed.
	tx, rx := gm.AnnounceCounts()
	if tx == 0 || rx == 0 {
		t.Fatal("no announce traffic during election")
	}
}

// ElectAndAssumeForTest exposes ElectAndAssume (kept in a helper so the
// test reads naturally).
func ElectAndAssumeForTest(d *Domain) (*Node, error) { return d.ElectAndAssume() }

func TestElectionThenSyncConverges(t *testing.T) {
	e, d := electRing(t, 2)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.RunUntil(2 * sim.Second)
	if got := d.MaxAbsOffset(); got > 50*sim.Nanosecond {
		t.Fatalf("post-election precision = %v", got)
	}
}

func TestGrandmasterFailover(t *testing.T) {
	e, d := electRing(t, 0)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.RunUntil(2 * sim.Second)
	before := d.MaxAbsOffset()
	if before > 50*sim.Nanosecond {
		t.Fatalf("pre-failure precision = %v", before)
	}
	// Kill the grandmaster mid-run.
	oldGM := d.Grandmaster()
	if err := d.FailNode(oldGM); err != nil {
		t.Fatal(err)
	}
	newGM := d.Grandmaster()
	if newGM == oldGM || !newGM.Alive() {
		t.Fatal("failover did not elect a new grandmaster")
	}
	// The ring minus one node is a line; survivors must re-converge to
	// the new grandmaster.
	e.RunFor(3 * sim.Second)
	if got := d.MaxAbsOffset(); got > 60*sim.Nanosecond {
		t.Fatalf("post-failover precision = %v", got)
	}
}

func TestFailNonGMTransitNode(t *testing.T) {
	e, d := electRing(t, 0)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.RunUntil(sim.Second)
	// Fail a transit node: the ring reroutes around it.
	if err := d.FailNode(d.Nodes()[3]); err != nil {
		t.Fatal(err)
	}
	if d.Grandmaster().ID != 0 {
		t.Fatal("grandmaster changed on non-GM failure")
	}
	e.RunFor(3 * sim.Second)
	if got := d.MaxAbsOffset(); got > 60*sim.Nanosecond {
		t.Fatalf("post-transit-failure precision = %v", got)
	}
}

func TestAutoFailoverOnKilledGM(t *testing.T) {
	e, d := electRing(t, 0)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.EnableAutoFailover(3 * DefaultConfig().SyncInterval)
	d.Start()
	e.RunUntil(2 * sim.Second)
	oldGM := d.Grandmaster()
	// Crash: no administrative notification.
	d.KillNode(oldGM)
	e.RunFor(4 * sim.Second)
	newGM := d.Grandmaster()
	if newGM == oldGM {
		t.Fatal("watchdog never detected the dead grandmaster")
	}
	if got := d.MaxAbsOffset(); got > 60*sim.Nanosecond {
		t.Fatalf("post-auto-failover precision = %v", got)
	}
}

func TestAutoFailoverQuietWhenHealthy(t *testing.T) {
	e, d := electRing(t, 2)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.EnableAutoFailover(3 * DefaultConfig().SyncInterval)
	d.Start()
	e.RunUntil(3 * sim.Second)
	if d.Grandmaster().ID != 2 {
		t.Fatal("watchdog displaced a healthy grandmaster")
	}
	if got := d.MaxAbsOffset(); got > 50*sim.Nanosecond {
		t.Fatalf("precision with watchdog armed = %v", got)
	}
}

func TestAutoFailoverInvalidInterval(t *testing.T) {
	_, d := electRing(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	d.EnableAutoFailover(0)
}

func TestElectionPartitionDetected(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	a := d.AddNode(0, 0, 0)
	b := d.AddNode(1, 0, 0)
	c := d.AddNode(2, 0, 0)
	d.Connect(a, b, 100)
	// c is isolated.
	_ = c
	if _, err := d.Elect(); err == nil {
		t.Fatal("partitioned election succeeded")
	}
}

func TestElectionNoAliveNodes(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	n := d.AddNode(0, 0, 0)
	n.alive = false
	if _, err := d.Elect(); err == nil {
		t.Fatal("election over dead domain succeeded")
	}
}

func TestSetGrandmasterStillWins(t *testing.T) {
	// The legacy SetGrandmaster path must produce an identity that a
	// subsequent election confirms.
	_, d := electRing(t, 5)
	d.SetGrandmaster(d.Nodes()[1])
	gm, err := d.Elect()
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 now has Priority1 128 < node 5's 100? No: SetGrandmaster
	// gives 128, node 5 has 100 — node 5 still outranks it.
	if gm.ID != 5 {
		t.Fatalf("elected %d, want 5 (best Priority1)", gm.ID)
	}
}

func TestHoldoverKeepsTrim(t *testing.T) {
	// A killed node free-runs on its last servo state (holdover): the
	// frequency trim learned while locked keeps it within microseconds
	// of the grandmaster over the next second, far better than its raw
	// ±ppm oscillator would manage (7 µs/s for this node).
	e, d := electRing(t, 0)
	if _, err := d.ElectAndAssume(); err != nil {
		t.Fatal(err)
	}
	d.Start()
	e.RunUntil(2 * sim.Second)
	victim := d.Nodes()[3] // intrinsic drift 7000 ppb in electRing
	syncsAtKill := victim.syncCount
	d.KillNode(victim)
	if err := d.FailNode(victim); err != nil { // rebuild tree around it
		t.Fatal(err)
	}
	e.RunFor(sim.Second)
	// No further corrections land on a dead node.
	if victim.syncCount != syncsAtKill {
		t.Fatalf("dead node still syncing (%d → %d)", syncsAtKill, victim.syncCount)
	}
	off := d.OffsetFromGM(victim)
	if off < 0 {
		off = -off
	}
	// Far better than uncorrected drift (7 µs), far worse than locked
	// (< 50 ns): holdover on the trimmed frequency.
	if off > 2*sim.Microsecond {
		t.Fatalf("holdover offset %v, trim not retained", off)
	}
	// Survivors remain synchronized.
	if got := d.MaxAbsOffset(); got > 60*sim.Nanosecond {
		t.Fatalf("survivors drifted: %v", got)
	}
}
