package gptp

import (
	"testing"
	"testing/quick"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Property: the PTP message codec is lossless over its whole field
// space for every message type.
func TestMessageCodecProperty(t *testing.T) {
	types := []MsgType{MsgSync, MsgPdelayReq, MsgPdelayResp, MsgFollowUp, MsgAnnounce}
	prop := func(tIdx uint8, seq uint16, origin int64, corr int64,
		p1, cls uint8, id uint64, steps uint16) bool {
		m := &Message{
			Type:       types[int(tIdx)%len(types)],
			Seq:        seq,
			OriginTS:   sim.Time(origin),
			Correction: corr,
			Priority:   PriorityVector{Priority1: p1, ClockClass: cls, ClockID: id},
			Steps:      steps,
		}
		got, err := UnmarshalMessage(m.Marshal(ethernet.SwitchMAC(3)))
		if err != nil {
			return false
		}
		return *got == *m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PriorityVector.Less is a strict weak ordering (irreflexive,
// asymmetric, transitive on samples).
func TestPriorityOrderingProperty(t *testing.T) {
	mk := func(a, b uint8, c uint64) PriorityVector {
		return PriorityVector{Priority1: a, ClockClass: b, ClockID: c}
	}
	prop := func(a1, a2 uint8, a3 uint64, b1, b2 uint8, b3 uint64, c1, c2 uint8, c3 uint64) bool {
		a, b, c := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		if a.Less(a) {
			return false // irreflexive
		}
		if a.Less(b) && b.Less(a) {
			return false // asymmetric
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false // transitive
		}
		// Totality: distinct vectors compare one way or the other.
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
