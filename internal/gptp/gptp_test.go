package gptp

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// buildLine creates a chain gm - n1 - n2 - ... with the given drifts.
func buildLine(e *sim.Engine, cfg Config, drifts []clock.PPB, linkDelay sim.Time) *Domain {
	d := NewDomain(e, cfg)
	var prev *Node
	for i, drift := range drifts {
		// Give every node a distinct initial phase error up to ±0.5 ms.
		off := sim.Time(int64(i*137_000) - 250_000)
		n := d.AddNode(i, drift, off)
		if prev != nil {
			d.Connect(prev, n, linkDelay)
		}
		prev = n
	}
	d.SetGrandmaster(d.Nodes()[0])
	return d
}

func TestTwoNodeConvergence(t *testing.T) {
	e := sim.NewEngine()
	d := buildLine(e, DefaultConfig(), []clock.PPB{0, 40_000}, 500*sim.Nanosecond)
	d.Start()
	e.RunUntil(2 * sim.Second)
	if got := d.MaxAbsOffset(); got > 50*sim.Nanosecond {
		t.Fatalf("two-node offset after 2s = %v, want < 50ns", got)
	}
}

func TestSixNodeRingPrecision(t *testing.T) {
	// The paper's demo: 6 switches in a ring, sub-50 ns precision.
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d := NewDomain(e, cfg)
	drifts := []clock.PPB{0, 35_000, -42_000, 18_500, -7_300, 49_000}
	nodes := make([]*Node, len(drifts))
	for i, dr := range drifts {
		nodes[i] = d.AddNode(i, dr, sim.Time(i)*100*sim.Microsecond)
	}
	for i := range nodes {
		d.Connect(nodes[i], nodes[(i+1)%len(nodes)], 400*sim.Nanosecond)
	}
	d.SetGrandmaster(nodes[0])
	d.Start()
	e.RunUntil(2 * sim.Second)

	// Track the worst offset over a steady-state window.
	var worst sim.Time
	for i := 0; i < 50; i++ {
		e.RunFor(cfg.SyncInterval / 2)
		if off := d.MaxAbsOffset(); off > worst {
			worst = off
		}
	}
	if worst > 50*sim.Nanosecond {
		t.Fatalf("6-node ring steady-state precision = %v, want < 50ns", worst)
	}
	t.Logf("steady-state precision: %v", worst)
}

func TestPdelayAccuracy(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	d := buildLine(e, cfg, []clock.PPB{0, 10_000}, 750*sim.Nanosecond)
	d.Start()
	e.RunUntil(2 * sim.Second)
	slave := d.Nodes()[1]
	delay, ok := slave.upstream.MeasuredDelay()
	if !ok {
		t.Fatal("no pdelay measurement completed")
	}
	err := delay - d.msgDelay(slave.upstream)
	if err < 0 {
		err = -err
	}
	if err > 30*sim.Nanosecond {
		t.Fatalf("pdelay error = %v (measured %v)", err, delay)
	}
}

func TestStepOnFirstSync(t *testing.T) {
	e := sim.NewEngine()
	d := buildLine(e, DefaultConfig(), []clock.PPB{0, 20_000}, 100*sim.Nanosecond)
	d.Start()
	e.RunUntil(sim.Second)
	st := d.Stats()
	if len(st) != 1 {
		t.Fatalf("Stats len = %d", len(st))
	}
	if st[0].StepCount < 1 {
		t.Fatal("slave never stepped despite large initial offset")
	}
	if st[0].SyncCount < 10 {
		t.Fatalf("only %d syncs in 1s", st[0].SyncCount)
	}
}

func TestHighDriftStillConverges(t *testing.T) {
	// ±100 ppm, the worst commodity crystal spec.
	e := sim.NewEngine()
	d := buildLine(e, DefaultConfig(), []clock.PPB{0, 100_000, -100_000}, 300*sim.Nanosecond)
	d.Start()
	e.RunUntil(3 * sim.Second)
	if got := d.MaxAbsOffset(); got > 100*sim.Nanosecond {
		t.Fatalf("high-drift offset = %v", got)
	}
}

func TestUnreachableNodePanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	a := d.AddNode(0, 0, 0)
	d.AddNode(1, 0, 0) // never connected
	defer func() {
		if recover() == nil {
			t.Error("SetGrandmaster with unreachable node did not panic")
		}
	}()
	d.SetGrandmaster(a)
}

func TestStartWithoutGMPanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	d.AddNode(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("Start without grandmaster did not panic")
		}
	}()
	d.Start()
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero intervals did not panic")
		}
	}()
	NewDomain(sim.NewEngine(), Config{})
}

func TestNegativeLinkDelayPanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	a := d.AddNode(0, 0, 0)
	b := d.AddNode(1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("negative link delay did not panic")
		}
	}()
	d.Connect(a, b, -1)
}

func TestStarTopologySync(t *testing.T) {
	// Core with three children, as in the paper's star scenario.
	e := sim.NewEngine()
	d := NewDomain(e, DefaultConfig())
	core := d.AddNode(0, 0, 0)
	for i := 1; i <= 3; i++ {
		child := d.AddNode(i, clock.PPB(i*13_000-20_000), sim.Time(i)*50*sim.Microsecond)
		d.Connect(core, child, 350*sim.Nanosecond)
	}
	d.SetGrandmaster(core)
	d.Start()
	e.RunUntil(2 * sim.Second)
	if got := d.MaxAbsOffset(); got > 50*sim.Nanosecond {
		t.Fatalf("star precision = %v, want < 50ns", got)
	}
}

func TestOffsetDeterminism(t *testing.T) {
	run := func() sim.Time {
		e := sim.NewEngine()
		d := buildLine(e, DefaultConfig(), []clock.PPB{0, 33_000, -21_000}, 200*sim.Nanosecond)
		d.Start()
		e.RunUntil(sim.Second)
		return d.MaxAbsOffset()
	}
	if run() != run() {
		t.Fatal("gPTP simulation is not deterministic")
	}
}
