// Package gptp implements the Time Sync function template of
// TSN-Builder: a generalized Precision Time Protocol (IEEE 802.1AS)
// model with the three submodules the paper names in Fig. 5 —
// collection of clock time (PHY timestamping of Sync/Follow_Up and
// Pdelay exchanges), calculation of correction time (offset and link
// delay arithmetic) and clock correction (phase step + frequency trim
// servo).
//
// As in 802.1AS, time propagates hop by hop from a grandmaster over a
// spanning tree: every time-aware system measures the delay of the link
// to its upstream neighbor with the peer-delay mechanism and
// disciplines its local oscillator to the neighbor's clock. PTP frames
// are timestamped at the PHY and never cross the switching fabric, so
// the model delivers them directly over each link rather than through
// the simulated dataplane; this mirrors hardware behaviour.
package gptp

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

// Config tunes the protocol. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// SyncInterval is the time between Sync messages on each master
	// port. 802.1AS defaults to 125 ms; the prototype syncs faster to
	// converge quickly after power-up.
	SyncInterval sim.Time
	// PdelayInterval is the time between peer-delay measurements.
	PdelayInterval sim.Time
	// StepThreshold is the offset magnitude above which the servo steps
	// the clock phase instead of slewing.
	StepThreshold sim.Time
	// TimestampJitter is the half-width of the uniform PHY timestamp
	// error. The paper's FPGA timestamps at 125 MHz, i.e. 8 ns
	// granularity with a few ns of sampling jitter.
	TimestampJitter sim.Time
	// Granularity is the timestamp quantum applied by the PHY.
	Granularity sim.Time
	// MsgWireBytes is the on-wire size of a PTP message (header +
	// body + FCS), used to compute its serialization delay.
	MsgWireBytes int
	// LinkRate is the bit rate PTP messages are serialized at.
	LinkRate ethernet.Rate
}

// DefaultConfig matches the paper's prototype: 125 MHz timestamping on
// 1 Gbps links with sub-50 ns precision as the target.
func DefaultConfig() Config {
	return Config{
		SyncInterval:    sim.Millisecond * 32,
		PdelayInterval:  sim.Millisecond * 250,
		StepThreshold:   sim.Microsecond,
		TimestampJitter: 4 * sim.Nanosecond,
		Granularity:     clock.Granularity125MHz,
		MsgWireBytes:    90,
		LinkRate:        ethernet.Gbps,
	}
}

// Node is one time-aware system (switch or end station).
type Node struct {
	ID    int
	Clock *clock.Clock

	domain   *Domain
	ports    []*Port
	upstream *Port // port toward the grandmaster; nil on the GM

	// priority is the BMCA system identity; alive gates all protocol
	// activity (holdover when false).
	priority PriorityVector
	alive    bool

	// Servo state.
	synced     bool
	lastOffset sim.Time
	// Stats.
	syncCount  int
	stepCount  int
	lastCorrAt sim.Time
	announceTx uint64
	announceRx uint64

	// Telemetry handles; zero values are no-ops.
	metOffset metrics.Gauge
	metSyncs  metrics.Counter
	metSteps  metrics.Counter
}

// Port is one gPTP-capable port of a node.
type Port struct {
	owner *Node
	peer  *Port
	// trueDelay is the physical propagation delay of the attached link.
	trueDelay sim.Time
	// measuredDelay is the pdelay mechanism's current estimate.
	measuredDelay sim.Time
	hasDelay      bool
	rng           *sim.Rand
	// seq numbers outgoing event messages.
	seq uint16
}

// send marshals msg onto the wire and invokes handle with the decoded
// copy after the link latency — every protocol exchange crosses the
// real codec.
func (d *Domain) send(from *Port, msg *Message, handle func(e *sim.Engine, m *Message)) {
	from.seq++
	msg.Seq = from.seq
	frame := msg.Marshal(d.srcMAC(from.owner))
	d.engine.After(d.msgDelay(from), "ptp:"+msg.Type.String(), func(e *sim.Engine) {
		got, err := UnmarshalMessage(frame)
		if err != nil {
			panic(err) // codec breakage is a programming error
		}
		handle(e, got)
	})
}

// MeasuredDelay returns the current peer-delay estimate and whether a
// measurement has completed.
func (p *Port) MeasuredDelay() (sim.Time, bool) { return p.measuredDelay, p.hasDelay }

// Domain is a gPTP domain: a set of nodes joined by point-to-point
// links with one grandmaster.
type Domain struct {
	cfg    Config
	engine *sim.Engine
	nodes  []*Node
	gm     *Node
	seed   uint64

	// metRoleChanges counts sync-tree rebuilds that moved a node's
	// upstream port (BMCA re-elections, failovers, initial build).
	metRoleChanges metrics.Counter
}

// NewDomain creates an empty domain running on engine.
func NewDomain(engine *sim.Engine, cfg Config) *Domain {
	if cfg.SyncInterval <= 0 || cfg.PdelayInterval <= 0 {
		panic("gptp: non-positive intervals")
	}
	return &Domain{cfg: cfg, engine: engine, seed: 0x67707470}
}

// AddNode registers a time-aware system whose oscillator has the given
// intrinsic drift and initial phase offset.
func (d *Domain) AddNode(id int, drift clock.PPB, initialOffset sim.Time) *Node {
	c := clock.New(drift, initialOffset)
	c.SetGranularity(d.cfg.Granularity)
	n := &Node{
		ID: id, Clock: c, domain: d, alive: true,
		// Default identity: free-running clock class, ID from the node
		// number (from the MAC in hardware).
		priority: PriorityVector{Priority1: 246, ClockClass: 248, ClockID: uint64(id) + 1},
	}
	d.nodes = append(d.nodes, n)
	return n
}

// Instrument resolves per-node telemetry handles from reg: a signed
// offset-from-upstream gauge (ns), sync and phase-step counters per
// node, and a domain-wide BMCA role-change counter. Call after every
// AddNode; a nil registry is a no-op.
func (d *Domain) Instrument(reg *metrics.Registry) {
	reg.Help("tsn_gptp_offset_ns", "last sync offset sample from the upstream clock, nanoseconds")
	reg.Help("tsn_gptp_syncs_total", "sync corrections applied")
	reg.Help("tsn_gptp_steps_total", "phase steps (gross corrections) applied")
	reg.Help("tsn_gptp_role_changes_total", "sync-tree rebuilds that changed some node's upstream port")
	for _, n := range d.nodes {
		node := metrics.L("node", fmt.Sprint(n.ID))
		n.metOffset = reg.Gauge("tsn_gptp_offset_ns", node)
		n.metSyncs = reg.Counter("tsn_gptp_syncs_total", node)
		n.metSteps = reg.Counter("tsn_gptp_steps_total", node)
	}
	d.metRoleChanges = reg.Counter("tsn_gptp_role_changes_total")
}

// srcMAC derives the node's protocol source address.
func (d *Domain) srcMAC(n *Node) ethernet.MAC { return ethernet.SwitchMAC(n.ID) }

// Nodes returns the registered nodes in insertion order.
func (d *Domain) Nodes() []*Node { return d.nodes }

// Connect joins a and b with a full-duplex link of the given
// propagation delay and returns the two port endpoints.
func (d *Domain) Connect(a, b *Node, delay sim.Time) (*Port, *Port) {
	if delay < 0 {
		panic("gptp: negative link delay")
	}
	d.seed = d.seed*6364136223846793005 + 1442695040888963407
	pa := &Port{owner: a, trueDelay: delay, rng: sim.NewRand(d.seed)}
	d.seed = d.seed*6364136223846793005 + 1442695040888963407
	pb := &Port{owner: b, trueDelay: delay, rng: sim.NewRand(d.seed)}
	pa.peer, pb.peer = pb, pa
	a.ports = append(a.ports, pa)
	b.ports = append(b.ports, pb)
	return pa, pb
}

// SetGrandmaster designates gm as the domain's time source and builds
// the sync spanning tree (BFS over links) assigning each other node its
// upstream port. It also gives gm an administratively preferred BMCA
// identity so a later election confirms the choice.
func (d *Domain) SetGrandmaster(gm *Node) {
	gm.priority.Priority1 = 128
	gm.priority.ClockClass = 6
	if err := d.assume(gm); err != nil {
		panic(err)
	}
}

// Grandmaster returns the domain's time source.
func (d *Domain) Grandmaster() *Node { return d.gm }

// Start schedules the protocol: immediate pdelay measurements on every
// port, then periodic Sync transmission on every master port (ports
// whose peer considers them upstream).
func (d *Domain) Start() {
	if d.gm == nil {
		panic("gptp: Start before SetGrandmaster")
	}
	for _, n := range d.nodes {
		for _, p := range n.ports {
			p := p
			// Every port measures its link delay and ticks a periodic
			// Sync opportunity; the role check happens at fire time, so
			// re-election (BMCA failover) takes effect without
			// rescheduling.
			d.engine.After(0, "pdelay", func(*sim.Engine) { d.startPdelay(p) })
			d.schedulePeriodicSync(p)
		}
	}
}

// msgDelay returns the wire latency of one PTP message over port p:
// serialization + propagation.
func (d *Domain) msgDelay(p *Port) sim.Time {
	return ethernet.TxTime(d.cfg.MsgWireBytes+ethernet.OverheadBytes, d.cfg.LinkRate) + p.trueDelay
}

// timestamp models PHY timestamping at instant now on port p: the local
// clock reading, quantized, plus uniform sampling jitter.
func (d *Domain) timestamp(p *Port, now sim.Time) sim.Time {
	ts := p.owner.Clock.Timestamp(now)
	if j := d.cfg.TimestampJitter; j > 0 {
		ts += p.rng.Time(2*j+1) - j
	}
	return ts
}

// --- Peer delay measurement (Pdelay_Req / Pdelay_Resp) ---

func (d *Domain) startPdelay(p *Port) {
	d.measurePdelay(p)
	d.engine.After(d.cfg.PdelayInterval, "pdelay", func(*sim.Engine) { d.startPdelay(p) })
}

func (d *Domain) measurePdelay(p *Port) {
	if !p.owner.alive || !p.peer.owner.alive {
		return
	}
	now := d.engine.Now()
	t1 := d.timestamp(p, now) // initiator tx timestamp
	// Pdelay_Req crosses the wire through the codec.
	d.send(p, &Message{Type: MsgPdelayReq}, func(e *sim.Engine, _ *Message) {
		t2 := d.timestamp(p.peer, e.Now()) // responder rx
		// Responder turnaround: a small processing time.
		turnaround := 2 * sim.Microsecond
		e.After(turnaround, "pdelay-turn", func(e2 *sim.Engine) {
			t3 := d.timestamp(p.peer, e2.Now()) // responder tx
			// Pdelay_Resp carries the turnaround (t3 − t2) as its
			// correction, the condensed one-message form.
			resp := &Message{Type: MsgPdelayResp, OriginTS: t2, Correction: int64(t3 - t2)}
			d.send(p.peer, resp, func(e3 *sim.Engine, m *Message) {
				t4 := d.timestamp(p, e3.Now()) // initiator rx
				// Mean path delay per IEEE 1588: ((t4-t1)-(t3-t2))/2.
				delay := ((t4 - t1) - sim.Time(m.Correction)) / 2
				if delay < 0 {
					delay = 0
				}
				// Exponentially average successive measurements: a static
				// error in the delay estimate biases every downstream
				// clock, so smoothing it matters more than smoothing the
				// per-sync offset samples.
				if p.hasDelay {
					p.measuredDelay = (3*p.measuredDelay + delay) / 4
				} else {
					p.measuredDelay = delay
					p.hasDelay = true
				}
			})
		})
	})
}

// --- Sync / Follow_Up propagation ---

func (d *Domain) schedulePeriodicSync(master *Port) {
	d.engine.After(d.cfg.SyncInterval, "sync", func(*sim.Engine) {
		d.sendSync(master)
		d.schedulePeriodicSync(master)
	})
}

// sendSync emits one two-step Sync from master port: the Sync is
// timestamped on egress (t1) and a Follow_Up carrying t1 trails it.
// Ports that are not currently master toward their peer (or whose
// owner/peer is out of service) skip the opportunity.
func (d *Domain) sendSync(master *Port) {
	if !master.owner.alive || !master.peer.owner.alive {
		return
	}
	if master.peer.owner.upstream != master.peer {
		return
	}
	now := d.engine.Now()
	t1 := d.timestamp(master, now)
	slave := master.peer
	// Two-step sync over the codec: the Sync event message is
	// timestamped on arrival, the Follow_Up delivers t1.
	d.send(master, &Message{Type: MsgSync}, func(e *sim.Engine, _ *Message) {
		t2 := d.timestamp(slave, e.Now())
		d.send(master, &Message{Type: MsgFollowUp, OriginTS: t1}, func(e2 *sim.Engine, m *Message) {
			slave.owner.applysync(e2, m.OriginTS, t2, slave)
		})
	})
}

// applysync runs the correction-time calculation and clock-correction
// submodules on a (t1, t2) sample received on upstream port p.
func (n *Node) applysync(e *sim.Engine, t1, t2 sim.Time, p *Port) {
	if !n.alive {
		return
	}
	if !p.hasDelay {
		return // wait for the first pdelay measurement
	}
	d := n.domain
	now := e.Now()
	// offset = slaveTime - masterTimeAtArrival.
	offset := t2 - (t1 + p.measuredDelay)
	n.syncCount++
	n.metSyncs.Inc()
	n.metOffset.Set(int64(offset))
	prevCorr := n.lastCorrAt
	n.lastCorrAt = now

	if !n.synced || offset > d.cfg.StepThreshold*1000 || offset < -d.cfg.StepThreshold*1000 {
		// Phase step on first sync or gross error; frequency unknown.
		n.Clock.Step(now, -offset)
		n.synced = true
		n.stepCount++
		n.metSteps.Inc()
		n.lastOffset = 0
		return
	}
	// Frequency correction: the offset accumulated since the previous
	// correction estimates the residual rate error versus the upstream
	// clock (deadbeat frequency estimator).
	// The gain < 1 low-passes timestamp noise, which otherwise gets
	// re-amplified at every hop of the sync cascade.
	if elapsed := now - prevCorr; elapsed > 0 {
		ppb := clock.PPB(int64(offset) * 1_000_000_000 / int64(elapsed))
		n.Clock.Trim(now, n.Clock.TrimPPB()-ppb/4)
	}
	// Remove the residual phase error. Below the step threshold this is
	// a fine-grained correction; above it, it doubles as a step.
	n.Clock.Step(now, -offset)
	if offset > d.cfg.StepThreshold || offset < -d.cfg.StepThreshold {
		n.stepCount++
		n.metSteps.Inc()
	}
	n.lastOffset = offset
}

// OffsetFromGM returns node n's clock error relative to the grandmaster
// clock at the current engine time.
func (d *Domain) OffsetFromGM(n *Node) sim.Time {
	now := d.engine.Now()
	return n.Clock.Now(now) - d.gm.Clock.Now(now)
}

// MaxAbsOffset returns the worst clock error across all alive non-GM
// nodes, the domain's synchronization precision.
func (d *Domain) MaxAbsOffset() sim.Time {
	var worst sim.Time
	for _, n := range d.nodes {
		if n == d.gm || !n.alive {
			continue
		}
		off := d.OffsetFromGM(n)
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	return worst
}

// Stats reports per-node protocol counters.
type Stats struct {
	NodeID    int
	SyncCount int
	StepCount int
	Offset    sim.Time
}

// Stats returns a snapshot for every non-GM node.
func (d *Domain) Stats() []Stats {
	var out []Stats
	for _, n := range d.nodes {
		if n == d.gm {
			continue
		}
		out = append(out, Stats{
			NodeID:    n.ID,
			SyncCount: n.syncCount,
			StepCount: n.stepCount,
			Offset:    d.OffsetFromGM(n),
		})
	}
	return out
}
