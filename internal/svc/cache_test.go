package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		<-gate
		return []byte("body"), nil
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.Get(context.Background(), "k", compute)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = body
		}(i)
	}
	// Let the stampede pile up behind the leader, then release it.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", got)
	}
	for i, b := range results {
		if !bytes.Equal(b, []byte("body")) {
			t.Fatalf("result %d = %q", i, b)
		}
	}
	if c.Hits.Value() != n-1 || c.Misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits.Value(), c.Misses.Value())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(i int) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(fmt.Sprintf("v%d", i)), nil }
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Get(context.Background(), fmt.Sprintf("k%d", i), mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := c.Evictions.Value(); got != 1 {
		t.Fatalf("Evictions = %d", got)
	}
	// k0 was least recent — a re-get must recompute (miss).
	miss := c.Misses.Value()
	if _, hit, _ := c.Get(context.Background(), "k0", mk(0)); hit {
		t.Fatal("evicted key served from cache")
	}
	if c.Misses.Value() != miss+1 {
		t.Fatal("re-get of evicted key did not count as a miss")
	}
	// k2 stayed — hit.
	if _, hit, _ := c.Get(context.Background(), "k2", mk(2)); !hit {
		t.Fatal("resident key recomputed")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Get(context.Background(), "k", func() ([]byte, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	body, hit, err := c.Get(context.Background(), "k", func() ([]byte, error) {
		calls++
		return []byte("ok"), nil
	})
	if err != nil || hit || string(body) != "ok" {
		t.Fatalf("retry after error: body=%q hit=%v err=%v", body, hit, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (error evicted, success recomputed)", calls)
	}
}

func TestCacheFollowerDeadline(t *testing.T) {
	c := NewCache(4)
	gate := make(chan struct{})
	go func() {
		_, _, _ = c.Get(context.Background(), "k", func() ([]byte, error) {
			<-gate
			return []byte("slow"), nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // leader in flight
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := c.Get(ctx, "k", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	close(gate)
	// The computation itself was not cancelled: the body lands.
	body, hit, err := c.Get(context.Background(), "k", nil)
	if err != nil || !hit || string(body) != "slow" {
		t.Fatalf("post-resolve: body=%q hit=%v err=%v", body, hit, err)
	}
}

func TestCacheFreshReplaces(t *testing.T) {
	c := NewCache(4)
	if _, _, err := c.Get(context.Background(), "k", func() ([]byte, error) {
		return []byte("old"), nil
	}); err != nil {
		t.Fatal(err)
	}
	body, err := c.Fresh(context.Background(), "k", func() ([]byte, error) {
		return []byte("new"), nil
	})
	if err != nil || string(body) != "new" {
		t.Fatalf("Fresh: body=%q err=%v", body, err)
	}
	if got := c.Bypasses.Value(); got != 1 {
		t.Fatalf("Bypasses = %d", got)
	}
	// The cache now serves the fresh body.
	body, hit, err := c.Get(context.Background(), "k", nil)
	if err != nil || !hit || string(body) != "new" {
		t.Fatalf("after Fresh: body=%q hit=%v err=%v", body, hit, err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}
}
