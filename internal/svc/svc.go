// Package svc is the TSN-as-a-Service control plane: a long-running
// HTTP frontend over the paper's two core operations — derive a
// resource-efficient switch configuration from an application spec
// (POST /v1/derive), and transact a live reconfiguration against a
// managed running network (POST /v1/reconfig).
//
// The package is built as production robustness machinery around those
// two calls:
//
//   - per-request deadlines with context propagation into the
//     derivation cache and the commit queue;
//   - a bounded admission queue per request class with load shedding
//     (429 + Retry-After), shedding derivation before reconfiguration
//     and never aborting an in-flight commit;
//   - a singleflight + bounded-LRU derivation cache keyed by spec hash;
//   - a circuit breaker that trips on consecutive commit failures and
//     de-escalates when the watchdog reports the instance healthy;
//   - panic-recovery middleware that fails the request, never the
//     process;
//   - graceful drain: Shutdown stops the listener, waits for in-flight
//     requests, then stops the instance control loop (the obs.Server
//     ownership pattern).
package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// Options configures NewService. Zero values select the defaults.
type Options struct {
	// Workload selects the managed instance's network.
	Workload workload.Params
	// CacheSize bounds the derivation cache (entries; default 512).
	CacheSize int
	// DeriveConcurrency/DeriveQueue bound the derive class (defaults
	// 4 running, 64 waiting). ReconfigQueue bounds the reconfig wait
	// queue (default 16; concurrency is 1 — commits serialize).
	DeriveConcurrency int
	DeriveQueue       int
	ReconfigQueue     int
	// DeriveDeadline/ReconfigDeadline are the default per-request
	// deadlines (2s / 10s); the X-Request-Deadline header (a Go
	// duration, e.g. "500ms") overrides per request, capped at 60s.
	DeriveDeadline   time.Duration
	ReconfigDeadline time.Duration
	// BreakerThreshold consecutive commit failures trip the breaker
	// (default 3); BreakerCooldown is the open→half-open delay
	// (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryMax/RetryBackoffUs configure the reconfiguration engine's
	// bounded commit retry (default 3 retries, engine-default backoff).
	RetryMax       int
	RetryBackoffUs int
	// StateDir, when set, makes the control plane crash-consistent:
	// accepted reconfigurations journal through a WAL in this directory
	// and the instance replays them on startup (/readyz reports
	// "recovering" until the replay lands). Empty keeps the original
	// purely in-memory behavior.
	StateDir string
	// CheckpointEvery folds the journal into a checkpoint (rotating the
	// WAL) every n commits (default 16). Only meaningful with StateDir.
	CheckpointEvery int
	// recoverHold, when non-nil, stalls journal replay until the channel
	// closes — an in-package test hook for observing the recovering
	// window deterministically.
	recoverHold chan struct{}
}

func (o *Options) defaults() {
	if o.CacheSize == 0 {
		o.CacheSize = 512
	}
	if o.DeriveConcurrency == 0 {
		o.DeriveConcurrency = 4
	}
	if o.DeriveQueue == 0 {
		o.DeriveQueue = 64
	}
	if o.ReconfigQueue == 0 {
		o.ReconfigQueue = 16
	}
	if o.DeriveDeadline == 0 {
		o.DeriveDeadline = 2 * time.Second
	}
	if o.ReconfigDeadline == 0 {
		o.ReconfigDeadline = 10 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.RetryMax == 0 {
		o.RetryMax = 3
	}
}

// maxDeadline caps client-requested deadlines.
const maxDeadline = 60 * time.Second

// maxBodyBytes bounds request bodies (a spec or a delta is tiny).
const maxBodyBytes = 1 << 20

// Service is the control plane: HTTP frontend, admission control,
// derivation cache, circuit breaker and the managed instance.
type Service struct {
	opts  Options
	inst  *Instance
	cache *Cache
	adm   *Admission
	brk   *Breaker
	stats *stats

	mux       *http.ServeMux
	httpSrv   *http.Server
	closing   chan struct{}
	closeOnce sync.Once
}

// stats is the service-level telemetry: atomic cells written by any
// handler goroutine, folded into a registry snapshot at scrape time.
type stats struct {
	mu       sync.Mutex
	requests map[[2]string]*metrics.SyncCounter // {route, code-class} → count

	deadlineExceeded metrics.SyncCounter
	panics           metrics.SyncCounter
	breakerRejects   metrics.SyncCounter
}

func newStats() *stats {
	return &stats{requests: make(map[[2]string]*metrics.SyncCounter)}
}

// request counts one finished request under its route and status code.
func (s *stats) request(route string, code int) {
	key := [2]string{route, strconv.Itoa(code)}
	s.mu.Lock()
	c, ok := s.requests[key]
	if !ok {
		c = &metrics.SyncCounter{}
		s.requests[key] = c
	}
	s.mu.Unlock()
	c.Inc()
}

// NewService builds the control plane and starts the managed instance.
// With Options.StateDir set it first opens the durable store and
// replays checkpoint + WAL tail; corrupt or mismatched state refuses to
// serve rather than serving a journal it cannot trust.
func NewService(opts Options) (*Service, error) {
	opts.defaults()
	if opts.Workload.Topology == "" {
		// Resolve the default here so the durable state's workload hash
		// matches what the instance will actually build.
		opts.Workload = DefaultWorkload()
	}
	brk := NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	iopts := InstanceOptions{
		Workload:        opts.Workload,
		RetryMax:        opts.RetryMax,
		RetryBackoff:    sim.Time(opts.RetryBackoffUs) * sim.Microsecond,
		CheckpointEvery: opts.CheckpointEvery,
		recoverHold:     opts.recoverHold,
		// Watchdog recovery de-escalates the breaker: a healthy outcome
		// resets it; failures count only through the explicit Failure
		// calls on commit outcomes. Wired at construction because a
		// durable instance's replay job runs before NewInstance returns.
		OnHealth: func(healthy bool) {
			if healthy && brk.State() != BreakerClosed {
				brk.Success()
			}
		},
	}
	if opts.StateDir != "" {
		store, img, err := openDurable(opts.StateDir, workloadHash(opts.Workload))
		if err != nil {
			return nil, err
		}
		iopts.Store, iopts.Recovered = store, img
	}
	inst, err := NewInstance(iopts)
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:    opts,
		inst:    inst,
		cache:   NewCache(opts.CacheSize),
		adm:     NewAdmission(opts.DeriveConcurrency, opts.DeriveQueue, opts.ReconfigQueue),
		brk:     brk,
		stats:   newStats(),
		mux:     http.NewServeMux(),
		closing: make(chan struct{}),
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	s.mux.HandleFunc("/v1/derive", s.route("derive", s.opts.DeriveDeadline, s.handleDerive))
	s.mux.HandleFunc("/v1/reconfig", s.route("reconfig", s.opts.ReconfigDeadline, s.handleReconfig))
	s.mux.HandleFunc("/v1/config", s.route("config", 5*time.Second, s.handleConfig))
	s.mux.HandleFunc("/v1/journal", s.route("journal", 5*time.Second, s.handleJournal))
	s.mux.HandleFunc("/healthz", s.route("healthz", 5*time.Second, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.route("readyz", 5*time.Second, s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.route("metrics", 5*time.Second, s.handleMetrics))
	return s, nil
}

// Instance exposes the managed instance (chaos campaigns arm faults on
// it in-process).
func (s *Service) Instance() *Instance { return s.inst }

// Breaker exposes the reconfiguration circuit breaker.
func (s *Service) Breaker() *Breaker { return s.brk }

// Admission exposes the admission queues.
func (s *Service) Admission() *Admission { return s.adm }

// Cache exposes the derivation cache.
func (s *Service) Cache() *Cache { return s.cache }

// Handler returns the HTTP handler serving every endpoint.
func (s *Service) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown; it owns the
// underlying http.Server (the obs.Server pattern) and always returns a
// non-nil error, http.ErrServerClosed after a clean Shutdown.
func (s *Service) Serve(ln net.Listener) error { return s.httpSrv.Serve(ln) }

// Shutdown drains the service: the listener closes, in-flight requests
// get until ctx's deadline, then the instance control loop stops. Work
// accepted before the drain still resolves — the instance sentinel is
// FIFO-ordered behind queued commits.
func (s *Service) Shutdown(ctx context.Context) error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closing)
		err = s.httpSrv.Shutdown(ctx)
		if err != nil {
			_ = s.httpSrv.Close()
		}
		s.inst.Close()
	})
	return err
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// route wraps a handler in the middleware stack: panic recovery
// outermost (a panicking request 500s, the process survives), then the
// per-request deadline, then request accounting.
func (s *Service) route(name string, deadline time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.stats.panics.Inc()
				// The handler may have written nothing yet; best-effort
				// error body, never re-panic.
				writeError(rec, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", p))
			}
			s.stats.request(name, rec.code)
		}()
		d := deadline
		if hdr := r.Header.Get("X-Request-Deadline"); hdr != "" {
			if v, err := time.ParseDuration(hdr); err == nil && v > 0 {
				d = min(v, maxDeadline)
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h(rec, r.WithContext(ctx))
	}
}

// writeJSON writes a 2xx JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// shed writes the 429 load-shed response.
func shed(w http.ResponseWriter, retryAfter time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Round(time.Second)/time.Second)))
	writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
}

// handleDerive serves POST /v1/derive: admission, spec normalization,
// then the singleflight cache. Cache-Control: no-cache recomputes and
// refreshes the entry (the coherence oracle's fresh path).
func (s *Service) handleDerive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	release, err := s.adm.Derive.Acquire(r.Context(), s.adm.Pressured())
	if err != nil {
		if errors.Is(err, ErrShed) {
			shed(w, time.Second)
		} else {
			s.stats.deadlineExceeded.Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline expired in admission queue")
		}
		return
	}
	defer release()

	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: "+err.Error())
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := spec.Hash()
	compute := func() ([]byte, error) { return deriveBody(key, spec) }

	var body []byte
	var cached bool
	if r.Header.Get("Cache-Control") == "no-cache" {
		body, err = s.cache.Fresh(r.Context(), key, compute)
	} else {
		body, cached, err = s.cache.Get(r.Context(), key, compute)
	}
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.stats.deadlineExceeded.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline expired during derivation")
		return
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Spec-Hash", key)
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	_, _ = w.Write(body)
}

// deriveBody computes the deterministic response body for a normalized
// spec: workload build (topology + flows + derivation + design) and a
// canonical JSON encoding.
func deriveBody(key string, spec Spec) ([]byte, error) {
	wl, err := workload.Build(spec.Params())
	if err != nil {
		return nil, err
	}
	resp := DeriveResponse{
		SpecHash:     key,
		Config:       ToConfigJSON(wl.Der.Config),
		MaxOccupancy: wl.Der.Plan.MaxOccupancy,
		MemoryKb:     wl.Design.Report.TotalKb(),
	}
	for _, it := range wl.Design.Report.Items {
		resp.Memory = append(resp.Memory, MemoryItem{Label: it.Name, Bits: it.Bits})
	}
	return json.Marshal(resp)
}

// handleReconfig serves POST /v1/reconfig: breaker, admission, then
// one serialized transaction against the managed instance. A 200 means
// committed and verified in force; anything else means the live
// configuration is exactly what it was (or 500 with the breaker
// tripping when the engine itself broke its contract).
func (s *Service) handleReconfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.brk.Allow() {
		s.stats.breakerRejects.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.brk.RetryAfter()/time.Second)))
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open: recent commits failed")
		return
	}
	release, err := s.adm.Reconfig.Acquire(r.Context(), false)
	if err != nil {
		if errors.Is(err, ErrShed) {
			shed(w, 2*time.Second)
		} else {
			s.stats.deadlineExceeded.Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline expired in admission queue")
		}
		return
	}
	defer release()

	var req ReconfigRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad delta: "+err.Error())
		return
	}
	if req.Empty() {
		writeError(w, http.StatusBadRequest, "empty delta: nothing to reconfigure")
		return
	}

	out, err := s.inst.Reconfigure(r.Context(), &req)
	switch {
	case err != nil:
		switch {
		case errors.Is(err, ErrInstanceClosed):
			writeError(w, http.StatusServiceUnavailable, "instance shutting down")
		case errors.Is(err, ErrRecovering):
			writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		default:
			s.stats.deadlineExceeded.Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline expired before commit started")
		}
		return
	case out.Shed:
		s.stats.deadlineExceeded.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline expired before commit started")
		return
	case out.RejectErr != nil:
		// Validation rejection: a client problem, not an instance
		// failure — the breaker does not count it.
		writeError(w, http.StatusConflict, out.RejectErr.Error())
		return
	case out.VerifyErr != nil:
		// The engine broke commit-or-exact-rollback (wedged commit):
		// partial state is live. Trip towards open and go unready.
		s.brk.Failure()
		writeError(w, http.StatusInternalServerError,
			"post-commit verification failed: "+out.VerifyErr.Error())
		return
	case out.WALErr != nil:
		// The commit record never became durable: the ack contract (2xx
		// implies crash-survivable) cannot be met, so this is a failure
		// even though the engine committed. The instance degrades until
		// an operator intervenes.
		s.brk.Failure()
		writeError(w, http.StatusInternalServerError,
			"commit not durable: "+out.WALErr.Error())
		return
	case out.State == reconfig.StateRolledBack:
		s.brk.Failure()
		msg := "commit failed, rolled back"
		if out.Err != nil {
			msg = out.Err.Error()
		}
		writeError(w, http.StatusInternalServerError, msg)
		return
	case out.State != reconfig.StateCommitted:
		s.brk.Failure()
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("transaction resolved %v", out.State))
		return
	}
	s.brk.Success()
	writeJSON(w, http.StatusOK, ReconfigResponse{
		Seq: out.Seq, State: out.State.String(), Attempts: out.Attempts,
		CommitAtNs: out.CommitAt, Config: ToConfigJSON(out.Config),
	})
}

// handleConfig serves GET /v1/config: the configuration in force. While
// journal replay is still running the in-force configuration is not yet
// known, so the endpoint refuses rather than answering stale.
func (s *Service) handleConfig(w http.ResponseWriter, _ *http.Request) {
	if s.inst.Recovering() {
		writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		return
	}
	writeJSON(w, http.StatusOK, ToConfigJSON(s.inst.LiveConfig()))
}

// handleJournal serves GET /v1/journal: the committed-transaction
// journal (the accepted-then-lost oracle's ground truth).
func (s *Service) handleJournal(w http.ResponseWriter, _ *http.Request) {
	if s.inst.Recovering() {
		writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		return
	}
	st := s.inst.Status()
	if st.Journal == nil {
		st.Journal = []JournalEntry{}
	}
	writeJSON(w, http.StatusOK, st.Journal)
}

// handleHealthz serves liveness + instance health: 200 while the
// process serves and the instance verifies clean, 503 once the
// watchdog degrades or a wedged commit left partial state.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	degraded, detail := s.inst.Health()
	body := map[string]any{
		"status":  "ok",
		"breaker": s.brk.State().String(),
	}
	code := http.StatusOK
	if degraded {
		body["status"] = "degraded"
		body["detail"] = detail
		if st := s.inst.Status(); st.VerifyErr != nil {
			body["detail"] = st.VerifyErr.Error()
		}
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleReadyz serves readiness: ready to take traffic means journal
// replay has finished, the instance is healthy, the breaker is not
// open, and the reconfig queue has room. The recovering window gets its
// own distinct status so orchestrators and the crash campaign can tell
// "still replaying" from ordinary unreadiness.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.inst.Recovering() {
		body := map[string]any{
			"ready":   false,
			"status":  "recovering",
			"reasons": []string{"journal replay in progress"},
		}
		if err := s.inst.RecoverErr(); err != nil {
			body["reasons"] = []string{"journal replay failed: " + err.Error()}
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	degraded, _ := s.inst.Health()
	reasons := []string{}
	if degraded {
		reasons = append(reasons, "instance degraded")
	}
	if s.brk.State() == BreakerOpen {
		reasons = append(reasons, "circuit breaker open")
	}
	if q := s.adm.Reconfig; q.Depth() >= q.MaxWait() && q.MaxWait() > 0 {
		reasons = append(reasons, "reconfig queue saturated")
	}
	select {
	case <-s.closing:
		reasons = append(reasons, "draining")
	default:
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleMetrics serves the Prometheus exposition: the service-level
// counters folded into a scrape-time registry, followed by the managed
// instance's last published simulation snapshot.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.scrapeRegistry().Snapshot().WritePrometheus(w)
	_ = s.inst.MetricsSnapshot().WritePrometheus(w)
}

// Service metric names.
const (
	MetricRequests     = "tsn_svc_requests_total"
	MetricQueueDepth   = "tsn_svc_queue_depth"
	MetricQueueDepthHW = "tsn_svc_queue_depth_high_water"
	MetricShed         = "tsn_svc_shed_total"
	MetricBreakerState = "tsn_svc_breaker_state"
	MetricBreakerTrans = "tsn_svc_breaker_transitions_total"
	MetricCache        = "tsn_svc_derive_cache_total"
	MetricPanics       = "tsn_svc_panics_total"
	MetricDeadlines    = "tsn_svc_deadline_exceeded_total"
)

// scrapeRegistry folds the atomic service stats into a fresh registry.
// Built per scrape on one goroutine, so the registry's unsynchronized
// cells are never raced.
func (s *Service) scrapeRegistry() *metrics.Registry {
	reg := metrics.New()
	reg.Help(MetricRequests, "service requests finished, by route and status code")
	s.stats.mu.Lock()
	keys := make([][2]string, 0, len(s.stats.requests))
	for k := range s.stats.requests {
		keys = append(keys, k)
	}
	counters := make(map[[2]string]uint64, len(keys))
	for _, k := range keys {
		counters[k] = s.stats.requests[k].Value()
	}
	s.stats.mu.Unlock()
	for k, v := range counters {
		reg.Counter(MetricRequests, metrics.L("route", k[0]), metrics.L("code", k[1])).Add(v)
	}

	reg.Help(MetricQueueDepth, "admission queue depth (waiting requests)")
	reg.Help(MetricQueueDepthHW, "admission queue depth high water")
	reg.Help(MetricShed, "requests shed by admission control, by class and reason")
	for _, q := range []*ClassQueue{s.adm.Derive, s.adm.Reconfig} {
		l := metrics.L("class", q.name)
		reg.Gauge(MetricQueueDepth, l).Set(q.Waiting.Value())
		reg.Gauge(MetricQueueDepthHW, l).Set(q.DepthHW.Value())
		reg.Counter(MetricShed, l, metrics.L("reason", "queue-full")).Add(q.ShedFull.Value())
		reg.Counter(MetricShed, l, metrics.L("reason", "pressure")).Add(q.ShedPressure.Value())
		reg.Counter(MetricShed, l, metrics.L("reason", "deadline")).Add(q.ShedDeadline.Value())
	}

	reg.Help(MetricBreakerState, "circuit breaker state (0 closed, 1 open, 2 half-open)")
	reg.Gauge(MetricBreakerState).Set(int64(s.brk.State()))
	reg.Help(MetricBreakerTrans, "circuit breaker transitions, by target state")
	reg.Counter(MetricBreakerTrans, metrics.L("to", "open")).Add(s.brk.TransToOpen.Value())
	reg.Counter(MetricBreakerTrans, metrics.L("to", "half-open")).Add(s.brk.TransToHalfOpen.Value())
	reg.Counter(MetricBreakerTrans, metrics.L("to", "closed")).Add(s.brk.TransToClosed.Value())

	reg.Help(MetricCache, "derivation cache lookups, by outcome")
	reg.Counter(MetricCache, metrics.L("outcome", "hit")).Add(s.cache.Hits.Value())
	reg.Counter(MetricCache, metrics.L("outcome", "miss")).Add(s.cache.Misses.Value())
	reg.Counter(MetricCache, metrics.L("outcome", "bypass")).Add(s.cache.Bypasses.Value())
	reg.Counter(MetricCache, metrics.L("outcome", "eviction")).Add(s.cache.Evictions.Value())

	reg.Help(MetricPanics, "handler panics recovered")
	reg.Counter(MetricPanics).Add(s.stats.panics.Value())
	reg.Help(MetricDeadlines, "requests that exceeded their deadline")
	reg.Counter(MetricDeadlines).Add(s.stats.deadlineExceeded.Value())
	return reg
}
