package svc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// Spec is the northbound application spec of POST /v1/derive: the same
// compact parameter set the chaos engine and tsnsim build workloads
// from, so any service request is replayable as a command line. The
// derivation is a pure function of the normalized spec, which is what
// makes the cache sound: same spec hash, same bytes.
type Spec struct {
	// Topology is one of star, ring, bidir-ring, linear, tree.
	Topology string `json:"topology"`
	// Switches is the node count.
	Switches int `json:"switches"`
	// TSFlows is the time-sensitive flow count.
	TSFlows int `json:"ts_flows"`
	// Hops is how many switches each TS flow traverses (default 2).
	Hops int `json:"hops,omitempty"`
	// WireSize is the TS frame size in bytes (default 200).
	WireSize int `json:"wire_size,omitempty"`
	// SlotUs is the CQF slot in microseconds (default 65, the paper's).
	SlotUs int `json:"slot_us,omitempty"`
	// RCMbps/BEMbps are background injector rates.
	RCMbps int `json:"rc_mbps,omitempty"`
	BEMbps int `json:"be_mbps,omitempty"`
	// FRERFlows makes the first n TS flows 802.1CB-redundant
	// (bidir-ring topologies only).
	FRERFlows int `json:"frer_flows,omitempty"`
	// Seed drives deadline assignment.
	Seed uint64 `json:"seed,omitempty"`
}

// Derivation size limits: the service is a shared frontend, so one
// request must not be able to buy unbounded CPU. The bounds cover the
// paper's scenarios with an order of magnitude to spare.
const (
	MaxSwitches = 64
	MaxTSFlows  = 512
)

// Normalize applies defaults and validates the spec, returning a
// descriptive error for anything out of range. The normalized spec is
// the cache identity: two requests that normalize equal share one
// derivation.
func (s *Spec) Normalize() error {
	if s.Hops == 0 {
		s.Hops = 2
	}
	if s.WireSize == 0 {
		s.WireSize = 200
	}
	if s.SlotUs == 0 {
		s.SlotUs = 65
	}
	switch s.Topology {
	case "star", "ring", "bidir-ring", "linear", "tree":
	case "":
		return fmt.Errorf("svc: spec missing topology")
	default:
		return fmt.Errorf("svc: unknown topology %q", s.Topology)
	}
	if s.Switches < 2 || s.Switches > MaxSwitches {
		return fmt.Errorf("svc: switches %d out of [2,%d]", s.Switches, MaxSwitches)
	}
	if s.TSFlows < 1 || s.TSFlows > MaxTSFlows {
		return fmt.Errorf("svc: ts_flows %d out of [1,%d]", s.TSFlows, MaxTSFlows)
	}
	if s.Hops < 1 || s.Hops > s.Switches {
		return fmt.Errorf("svc: hops %d out of [1,%d]", s.Hops, s.Switches)
	}
	if s.WireSize < 64 || s.WireSize > 1518 {
		return fmt.Errorf("svc: wire_size %d out of [64,1518]", s.WireSize)
	}
	if s.SlotUs < 5 || s.SlotUs > 1000 {
		return fmt.Errorf("svc: slot_us %d out of [5,1000]", s.SlotUs)
	}
	if s.RCMbps < 0 || s.RCMbps > 1000 || s.BEMbps < 0 || s.BEMbps > 1000 {
		return fmt.Errorf("svc: background rates out of [0,1000] Mbps")
	}
	if s.FRERFlows < 0 || s.FRERFlows > workload.MaxFRERFlows {
		return fmt.Errorf("svc: frer_flows %d out of [0,%d]", s.FRERFlows, workload.MaxFRERFlows)
	}
	if s.FRERFlows > 0 && s.Topology != "bidir-ring" {
		return fmt.Errorf("svc: frer_flows requires the bidir-ring topology")
	}
	return nil
}

// Hash returns the normalized spec's cache key. Call Normalize first.
func (s *Spec) Hash() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf(
		"%s|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		s.Topology, s.Switches, s.TSFlows, s.Hops, s.WireSize,
		s.SlotUs, s.RCMbps, s.BEMbps, s.FRERFlows, s.Seed)))
	return hex.EncodeToString(sum[:])
}

// Params converts the normalized spec into workload build parameters.
func (s *Spec) Params() workload.Params {
	return workload.Params{
		Topology: s.Topology, Switches: s.Switches, TSFlows: s.TSFlows,
		Hops: s.Hops, WireSize: s.WireSize, SlotUs: s.SlotUs,
		RCMbps: s.RCMbps, BEMbps: s.BEMbps, FRERFlows: s.FRERFlows,
		Seed: s.Seed,
	}
}

// ConfigJSON is the wire form of a resource configuration — the Table
// II set_* parameter file a derivation produces and a reconfiguration
// transacts to.
type ConfigJSON struct {
	UnicastSize   int   `json:"unicast_size"`
	MulticastSize int   `json:"multicast_size"`
	ClassSize     int   `json:"class_size"`
	MeterSize     int   `json:"meter_size"`
	GateSize      int   `json:"gate_size"`
	QueueNum      int   `json:"queue_num"`
	PortNum       int   `json:"port_num"`
	CBSMapSize    int   `json:"cbs_map_size"`
	CBSSize       int   `json:"cbs_size"`
	QueueDepth    int   `json:"queue_depth"`
	BufferNum     int   `json:"buffer_num"`
	FRERSize      int   `json:"frer_size"`
	FRERHistory   int   `json:"frer_history"`
	SlotNs        int64 `json:"slot_ns"`
	LinkRateBps   int64 `json:"link_rate_bps"`
}

// ToConfigJSON converts a core configuration to its wire form.
func ToConfigJSON(c core.Config) ConfigJSON {
	return ConfigJSON{
		UnicastSize: c.UnicastSize, MulticastSize: c.MulticastSize,
		ClassSize: c.ClassSize, MeterSize: c.MeterSize,
		GateSize: c.GateSize, QueueNum: c.QueueNum, PortNum: c.PortNum,
		CBSMapSize: c.CBSMapSize, CBSSize: c.CBSSize,
		QueueDepth: c.QueueDepth, BufferNum: c.BufferNum,
		FRERSize: c.FRERSize, FRERHistory: c.FRERHistory,
		SlotNs: int64(c.SlotSize), LinkRateBps: int64(c.LinkRate),
	}
}

// MemoryItem is one row of the platform memory report.
type MemoryItem struct {
	Label string `json:"label"`
	Bits  int64  `json:"bits"`
}

// DeriveResponse is POST /v1/derive's body. It is deterministic for a
// spec hash — the cache-coherence oracle compares cached and fresh
// bodies byte for byte.
type DeriveResponse struct {
	SpecHash     string       `json:"spec_hash"`
	Config       ConfigJSON   `json:"config"`
	MaxOccupancy int          `json:"max_occupancy"`
	MemoryKb     float64      `json:"memory_kb"`
	Memory       []MemoryItem `json:"memory"`
}

// ReconfigRequest is POST /v1/reconfig's body: absolute new values for
// the live-resizable resources; zero keeps the live value. The field
// set matches the chaos engine's reconfiguration delta.
type ReconfigRequest struct {
	UnicastSize   int `json:"unicast_size,omitempty"`
	MulticastSize int `json:"multicast_size,omitempty"`
	ClassSize     int `json:"class_size,omitempty"`
	MeterSize     int `json:"meter_size,omitempty"`
	QueueDepth    int `json:"queue_depth,omitempty"`
	BufferNum     int `json:"buffer_num,omitempty"`
}

// Empty reports a request that changes nothing.
func (r *ReconfigRequest) Empty() bool {
	return r.UnicastSize == 0 && r.MulticastSize == 0 && r.ClassSize == 0 &&
		r.MeterSize == 0 && r.QueueDepth == 0 && r.BufferNum == 0
}

// Candidate overlays the request's non-zero fields on the live config.
func (r *ReconfigRequest) Candidate(cfg core.Config) core.Config {
	if r.UnicastSize > 0 {
		cfg.UnicastSize = r.UnicastSize
	}
	if r.MulticastSize > 0 {
		cfg.MulticastSize = r.MulticastSize
	}
	if r.ClassSize > 0 {
		cfg.ClassSize = r.ClassSize
	}
	if r.MeterSize > 0 {
		cfg.MeterSize = r.MeterSize
	}
	if r.QueueDepth > 0 {
		cfg.QueueDepth = r.QueueDepth
	}
	if r.BufferNum > 0 {
		cfg.BufferNum = r.BufferNum
	}
	return cfg
}

// ReconfigResponse is POST /v1/reconfig's 200 body: the transaction is
// committed and observable — Seq is its position in the instance's
// committed journal, Config the configuration now in force.
type ReconfigResponse struct {
	Seq        uint64     `json:"seq"`
	State      string     `json:"state"`
	Attempts   int        `json:"attempts"`
	CommitAtNs sim.Time   `json:"commit_at_ns"`
	Config     ConfigJSON `json:"config"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
