package svc

import (
	"container/list"
	"context"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// Cache is the bounded derivation cache: an LRU over response bodies
// keyed by spec hash, with singleflight semantics — concurrent requests
// for the same key share one computation instead of stampeding the CPU.
// Entries are immutable once ready, so a cached body can be served to
// any number of readers without copying.
type Cache struct {
	mu    chan struct{} // 1-token mutex; acquisition can honor a context
	cap   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // key → element holding *cacheEntry

	// Hits/Misses/Bypasses/Evictions are the cache's telemetry,
	// readable concurrently.
	Hits, Misses, Bypasses, Evictions metrics.SyncCounter
}

// cacheEntry is one key's slot. ready closes when the leader finishes;
// until then body/err must not be read.
type cacheEntry struct {
	key   string
	ready chan struct{}
	body  []byte
	err   error
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		mu:    make(chan struct{}, 1),
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
	return c
}

// lock acquires the cache mutex unless ctx expires first.
func (c *Cache) lock(ctx context.Context) error {
	select {
	case c.mu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Cache) unlock() { <-c.mu }

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu <- struct{}{}
	defer c.unlock()
	return c.ll.Len()
}

// Get returns the body for key, computing it at most once across
// concurrent callers. hit reports whether the body came from the cache
// (a singleflight follower counts as a hit: it did not pay for the
// computation). A leader whose compute fails removes the entry so the
// error is not cached. ctx bounds the wait, both for the lock and for
// a leader in flight — the computation itself is not cancelled, the
// caller just stops waiting for it.
func (c *Cache) Get(ctx context.Context, key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	if err := c.lock(ctx); err != nil {
		return nil, false, err
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.MoveToFront(el)
		c.unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			// The leader failed; report its error without retrying here —
			// the entry is already gone, the next request leads afresh.
			return nil, false, e.err
		}
		c.Hits.Inc()
		return e.body, true, nil
	}

	// Miss: this caller leads.
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.evictLocked()
	c.unlock()

	e.body, e.err = compute()
	close(e.ready)
	c.Misses.Inc()
	if e.err != nil {
		c.remove(key, el)
		return nil, false, e.err
	}
	return e.body, false, nil
}

// Fresh computes the body for key outside the cache (the no-cache
// path), then replaces whatever the cache held so subsequent reads see
// the freshest result.
func (c *Cache) Fresh(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, error) {
	body, err := compute()
	c.Bypasses.Inc()
	if err != nil {
		return nil, err
	}
	if lockErr := c.lock(ctx); lockErr != nil {
		return body, nil // computed fine; just couldn't refresh the cache
	}
	defer c.unlock()
	e := &cacheEntry{key: key, ready: make(chan struct{}), body: body}
	close(e.ready)
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(e)
		c.evictLocked()
	}
	return body, nil
}

// remove drops key's entry if it still holds el (a later Fresh may
// have replaced it).
func (c *Cache) remove(key string, el *list.Element) {
	c.mu <- struct{}{}
	defer c.unlock()
	if cur, ok := c.items[key]; ok && cur == el {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// evictLocked trims the LRU tail down to capacity. Waiters on an
// evicted in-flight entry keep their pointer and resolve normally; the
// entry is just no longer findable.
func (c *Cache) evictLocked() {
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.Evictions.Inc()
	}
}
