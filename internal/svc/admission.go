package svc

import (
	"context"
	"errors"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// Admission is the service's bounded intake: each request class has a
// concurrency limit (slots actually doing work) and a wait bound
// (requests queued for a slot). Anything beyond the wait bound is shed
// immediately with 429 — the queue can never grow without limit, so
// overload degrades into fast rejections instead of collapse.
//
// Shed order is derivation before reconfiguration: derivations are
// cacheable, retryable, stateless work, while a reconfiguration carries
// a client's intent to change the live network. When the reconfig
// backlog crosses its pressure threshold, derive requests are shed even
// though their own queue has room, returning capacity to the class that
// cannot be replayed from cache.
type Admission struct {
	Derive   *ClassQueue
	Reconfig *ClassQueue
}

// ErrShed marks a request rejected by admission control (HTTP 429).
var ErrShed = errors.New("svc: admission queue full")

// ClassQueue is one request class's bounded queue.
type ClassQueue struct {
	name    string
	slots   chan struct{}
	maxWait int64

	// Waiting is the live queue depth (acquired but not yet running);
	// DepthHW its high-water mark; Shed the rejections by reason.
	Waiting      metrics.SyncGauge
	DepthHW      metrics.SyncGauge
	ShedFull     metrics.SyncCounter
	ShedPressure metrics.SyncCounter
	ShedDeadline metrics.SyncCounter
}

// NewClassQueue builds a queue admitting `concurrency` simultaneous
// requests with at most `maxWait` more waiting.
func NewClassQueue(name string, concurrency, maxWait int) *ClassQueue {
	if concurrency < 1 {
		concurrency = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &ClassQueue{
		name:    name,
		slots:   make(chan struct{}, concurrency),
		maxWait: int64(maxWait),
	}
}

// NewAdmission wires the two service classes.
func NewAdmission(deriveConc, deriveWait, reconfigWait int) *Admission {
	return &Admission{
		Derive: NewClassQueue("derive", deriveConc, deriveWait),
		// The managed instance serializes commits, so reconfig
		// concurrency is 1 by construction; only the wait bound varies.
		Reconfig: NewClassQueue("reconfig", 1, reconfigWait),
	}
}

// Pressured reports whether the reconfig backlog is deep enough
// (≥ 80% of its wait bound) that derive traffic should be shed first.
func (a *Admission) Pressured() bool {
	return a.Reconfig.maxWait > 0 &&
		a.Reconfig.Waiting.Value()*5 >= a.Reconfig.maxWait*4
}

// Acquire admits the request or rejects it: ErrShed when the queue is
// full (or sheddable under pressure), ctx.Err() when the request's
// deadline expired while waiting. On success the caller must invoke
// the returned release exactly once.
func (q *ClassQueue) Acquire(ctx context.Context, pressured bool) (release func(), err error) {
	if pressured {
		q.ShedPressure.Inc()
		return nil, ErrShed
	}
	// Fast path: a free slot admits without queueing.
	select {
	case q.slots <- struct{}{}:
		return q.release, nil
	default:
	}
	if q.Waiting.Add(1) > q.maxWait {
		q.Waiting.Add(-1)
		q.ShedFull.Inc()
		return nil, ErrShed
	}
	q.DepthHW.SetMax(q.Waiting.Value())
	defer q.Waiting.Add(-1)
	select {
	case q.slots <- struct{}{}:
		return q.release, nil
	case <-ctx.Done():
		q.ShedDeadline.Inc()
		return nil, ctx.Err()
	}
}

func (q *ClassQueue) release() { <-q.slots }

// Depth returns the current wait-queue depth.
func (q *ClassQueue) Depth() int64 { return q.Waiting.Value() }

// MaxWait returns the configured wait bound.
func (q *ClassQueue) MaxWait() int64 { return q.maxWait }

// Running returns how many requests currently hold a slot.
func (q *ClassQueue) Running() int { return len(q.slots) }
