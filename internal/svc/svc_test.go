package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// testWorkload is a tiny managed network that builds in milliseconds.
func testWorkload() workload.Params {
	return workload.Params{
		Topology: "linear", Switches: 2, TSFlows: 4, Hops: 2,
		WireSize: 200, SlotUs: 65, Seed: 1,
	}
}

func newTestService(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	if opts.Workload.Topology == "" {
		opts.Workload = testWorkload()
	}
	s, err := NewService(opts)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const specBody = `{"topology":"linear","switches":3,"ts_flows":8}`

func TestServiceDeriveCacheCoherence(t *testing.T) {
	_, ts := newTestService(t, Options{})
	url := ts.URL + "/v1/derive"

	r1, b1 := postJSON(t, url, specBody, nil)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first derive: %d %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first derive X-Cache = %q", got)
	}
	var dr DeriveResponse
	if err := json.Unmarshal(b1, &dr); err != nil {
		t.Fatalf("bad derive body: %v", err)
	}
	if dr.Config.UnicastSize <= 0 || dr.MemoryKb <= 0 || len(dr.Memory) == 0 {
		t.Fatalf("implausible derivation: %+v", dr)
	}
	if dr.SpecHash != r1.Header.Get("X-Spec-Hash") {
		t.Fatal("body hash and header hash disagree")
	}

	r2, b2 := postJSON(t, url, specBody, nil)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second derive X-Cache = %q", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached body differs from original")
	}

	// The coherence oracle's fresh path: a no-cache recompute must be
	// byte-identical to what the cache serves.
	r3, b3 := postJSON(t, url, specBody, map[string]string{"Cache-Control": "no-cache"})
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("fresh derive: %d %s", r3.StatusCode, b3)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("fresh body differs from cached body:\n%s\nvs\n%s", b1, b3)
	}
}

func TestServiceDeriveRejectsBadSpecs(t *testing.T) {
	_, ts := newTestService(t, Options{})
	url := ts.URL + "/v1/derive"
	for _, c := range []struct {
		name, body string
	}{
		{"malformed", `{"topology":`},
		{"unknown topology", `{"topology":"moebius","switches":3,"ts_flows":8}`},
		{"missing topology", `{"switches":3,"ts_flows":8}`},
		{"too many switches", `{"topology":"linear","switches":1000,"ts_flows":8}`},
		{"frer without bidir-ring", `{"topology":"linear","switches":3,"ts_flows":8,"frer_flows":2}`},
	} {
		resp, body := postJSON(t, url, c.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", c.name, resp.StatusCode, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no error body: %s", c.name, body)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/derive?x=1", specBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("query string broke derive: %d", resp.StatusCode)
	}
}

func TestServiceReconfigCommitAndJournal(t *testing.T) {
	s, ts := newTestService(t, Options{})
	live := s.Instance().LiveConfig()

	grown := live.UnicastSize * 2
	resp, body := postJSON(t, ts.URL+"/v1/reconfig",
		`{"unicast_size":`+jsonInt(grown)+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconfig: %d %s", resp.StatusCode, body)
	}
	var rr ReconfigResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Seq != 1 || rr.State != "committed" || rr.Config.UnicastSize != grown {
		t.Fatalf("reconfig response: %+v", rr)
	}

	// The accepted transaction is observable: /v1/config carries it...
	var cfg ConfigJSON
	getJSON(t, ts.URL+"/v1/config", &cfg)
	if cfg.UnicastSize != grown {
		t.Fatalf("live config unicast_size = %d, want %d", cfg.UnicastSize, grown)
	}
	// ...and the journal records it as entry 1.
	var journal []JournalEntry
	getJSON(t, ts.URL+"/v1/journal", &journal)
	if len(journal) != 1 || journal[0].Seq != 1 || journal[0].Config.UnicastSize != grown {
		t.Fatalf("journal: %+v", journal)
	}
}

func TestServiceReconfigValidationRejection(t *testing.T) {
	s, ts := newTestService(t, Options{})
	// Shrinking the unicast table below its live occupancy is a
	// validation rejection: 409, and NOT a breaker failure.
	resp, body := postJSON(t, ts.URL+"/v1/reconfig", `{"unicast_size":1}`, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("shrink-below-occupancy: %d %s", resp.StatusCode, body)
	}
	if s.Breaker().State() != BreakerClosed {
		t.Fatal("validation rejection moved the breaker")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/reconfig", `{}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty delta: %d", resp.StatusCode)
	}
}

func TestServiceWedgeTripsBreakerAndHealth(t *testing.T) {
	s, ts := newTestService(t, Options{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if err := s.Instance().ArmWedge(1); err != nil {
		t.Fatal(err)
	}
	live := s.Instance().LiveConfig()
	resp, body := postJSON(t, ts.URL+"/v1/reconfig",
		`{"unicast_size":`+jsonInt(live.UnicastSize*2)+`}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("wedged commit: %d %s (must NOT be 2xx — partial state)", resp.StatusCode, body)
	}
	// The wedge is visible: health degraded, readiness gone, breaker open.
	hr, hb := getRaw(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after wedge: %d %s", hr.StatusCode, hb)
	}
	rr, _ := getRaw(t, ts.URL+"/readyz")
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after wedge: %d", rr.StatusCode)
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v after wedged commit", s.Breaker().State())
	}
	resp, body = postJSON(t, ts.URL+"/v1/reconfig", `{"meter_size":64}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker admitted a reconfig: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker rejection missing Retry-After")
	}
}

func TestServiceTransientAbsorbedByRetry(t *testing.T) {
	s, ts := newTestService(t, Options{RetryMax: 3})
	if err := s.Instance().ArmTransient(0, 2); err != nil {
		t.Fatal(err)
	}
	live := s.Instance().LiveConfig()
	resp, body := postJSON(t, ts.URL+"/v1/reconfig",
		`{"unicast_size":`+jsonInt(live.UnicastSize*2)+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transient not absorbed: %d %s", resp.StatusCode, body)
	}
	var rr ReconfigResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two injected failures + success)", rr.Attempts)
	}
	if s.Breaker().State() != BreakerClosed {
		t.Fatal("absorbed transient moved the breaker")
	}
}

func TestServiceOverloadSheds429(t *testing.T) {
	s, ts := newTestService(t, Options{DeriveConcurrency: 1, DeriveQueue: -1})
	// Hold the only derive slot so the next request finds a full class
	// with a zero wait bound — it must shed instantly, not queue.
	release, err := s.Admission().Derive.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/derive", specBody, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated derive: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v — shedding must be fast", elapsed)
	}
}

func TestServiceDeadlineInQueue(t *testing.T) {
	s, ts := newTestService(t, Options{DeriveConcurrency: 1, DeriveQueue: 4})
	release, err := s.Admission().Derive.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, body := postJSON(t, ts.URL+"/v1/derive", specBody,
		map[string]string{"X-Request-Deadline": "50ms"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: %d %s", resp.StatusCode, body)
	}
}

func TestServicePanicRecovery(t *testing.T) {
	s, _ := newTestService(t, Options{})
	h := s.route("boom", time.Second, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d", rec.Code)
	}
	if got := s.stats.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d", got)
	}
	// The process survived; a normal request still works.
	hr := httptest.NewRecorder()
	s.Handler().ServeHTTP(hr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hr.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", hr.Code)
	}
}

func TestServiceHealthAndMetrics(t *testing.T) {
	_, ts := newTestService(t, Options{})
	hr, hb := getRaw(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", hr.StatusCode, hb)
	}
	rr, rb := getRaw(t, ts.URL+"/readyz")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d %s", rr.StatusCode, rb)
	}
	_, _ = postJSON(t, ts.URL+"/v1/derive", specBody, nil)
	mr, mb := getRaw(t, ts.URL+"/metrics")
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mr.StatusCode)
	}
	for _, want := range []string{
		MetricRequests, MetricQueueDepth, MetricBreakerState, MetricCache,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

func TestServiceShutdownIdempotent(t *testing.T) {
	s, ts := newTestService(t, Options{})
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	// Work after shutdown reports closed, not deadlock.
	if _, err := s.Instance().Reconfigure(context.Background(), &ReconfigRequest{MeterSize: 64}); err != ErrInstanceClosed {
		t.Fatalf("post-shutdown Reconfigure err = %v", err)
	}
}

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, b := getRaw(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
