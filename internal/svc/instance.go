package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// ErrInstanceClosed marks work submitted after the instance shut down.
var ErrInstanceClosed = errors.New("svc: instance closed")

// ErrRecovering marks work refused while journal replay is running.
var ErrRecovering = errors.New("svc: recovering: journal replay in progress")

// InstanceOptions configures the managed testbed instance.
type InstanceOptions struct {
	// Workload selects the managed network; the zero value picks a
	// small linear default.
	Workload workload.Params
	// RetryMax/RetryBackoff configure the reconfiguration engine's
	// bounded commit retry (absorbs transient staging failures).
	RetryMax     int
	RetryBackoff sim.Time
	// WatchdogInterval is the invariant audit period (default 1 ms of
	// simulated time). After every commit the instance advances the
	// simulation one interval so the watchdog sweeps the post-commit
	// state before the response is written.
	WatchdogInterval sim.Time
	// Store/Recovered, when set, make the instance durable: accepted
	// reconfigurations are journaled to the WAL, and the recovered
	// image is replayed onto the fresh network before the instance
	// reports ready.
	Store     *durableStore
	Recovered *recoveredImage
	// CheckpointEvery folds the journal into a checkpoint (with WAL
	// rotation) every n commits (default 16).
	CheckpointEvery int
	// OnHealth, when set, is invoked after every job with the
	// instance's health — the service wires it into the circuit
	// breaker so watchdog recovery de-escalates an open breaker. It
	// must be supplied at construction: the control loop (and, on a
	// durable instance, the replay job) starts before NewInstance
	// returns.
	OnHealth func(healthy bool)
	// recoverHold, when non-nil, stalls the replay job until the
	// channel closes — a test hook for observing the recovering state.
	recoverHold chan struct{}
}

// JournalEntry is one committed reconfiguration: the sequence number
// returned to the client and the configuration it put in force. The
// journal is the accepted-then-lost oracle's ground truth — every 2xx
// response must appear here, and the tail entry must match LiveConfig.
// With a durable store, every entry is also fsynced to the WAL before
// its 2xx is written, so the same oracle survives kill -9.
type JournalEntry struct {
	Seq    uint64     `json:"seq"`
	Config ConfigJSON `json:"config"`
}

// InstanceStatus is a point-in-time copy of the instance's control
// state, safe to read from any goroutine.
type InstanceStatus struct {
	Live      core.Config
	Seq       uint64
	Journal   []JournalEntry
	VerifyErr error
	Degraded  bool
	Detail    string
}

// ReconfigOutcome is one processed reconfiguration job's result.
type ReconfigOutcome struct {
	// Shed is set when the job's deadline expired before the commit
	// began; nothing was staged or touched.
	Shed bool
	// RejectErr is a validation rejection (the candidate cannot apply).
	RejectErr error
	// State/Attempts/CommitAt describe the resolved transaction.
	State    reconfig.State
	Attempts int
	CommitAt sim.Time
	// Err is the rollback cause for a failed commit.
	Err error
	// VerifyErr is a post-commit VerifyLive failure: partial state was
	// left in place (the wedged-commit signature).
	VerifyErr error
	// WALErr is a durability failure: the transaction committed in the
	// engine but its commit record never became stable, so no ack may
	// be sent and the instance is no longer crash-consistent.
	WALErr error
	// Seq/Config are set for a committed, verified transaction.
	Seq    uint64
	Config core.Config
}

// Instance owns one long-running simulated network and the single
// control-loop goroutine through which every engine interaction is
// serialized — the discrete-event engine is single-threaded by
// contract, so HTTP handlers never touch it directly. Reconfiguration
// jobs queue onto the loop and commit one at a time; a job whose
// deadline expires while queued is shed before anything is staged, but
// once a commit begins it always runs to resolution — an in-flight
// commit is never aborted.
//
// A durable instance additionally journals every transaction through
// its store and starts in the recovering state: the first job on the
// loop replays the recovered journal onto the fresh network, then
// de-asserts recovering exactly once.
type Instance struct {
	net      *testbed.Net
	reg      *metrics.Registry
	interval sim.Time

	store     *durableStore
	ckptEvery int

	jobs   chan func()
	closed atomic.Bool
	done   chan struct{}

	// recovering is asserted from construction until the replay job
	// completes (durable instances only); recoverEnds counts the
	// de-assertions — exactly one, guarded by recoverOnce.
	recovering  atomic.Bool
	recoverOnce sync.Once
	recoverEnds atomic.Int32

	// snap is the last published registry snapshot (obs pattern: HTTP
	// readers only ever see published copies).
	snap atomic.Value // metrics.Snapshot

	// OnHealth is the health callback from InstanceOptions; read by the
	// loop goroutine only.
	OnHealth func(healthy bool)

	mu         sync.Mutex
	live       core.Config
	seq        uint64
	journal    []JournalEntry
	verifyErr  error
	walErr     error
	recoverErr error
}

// DefaultWorkload is the managed instance's fallback network.
func DefaultWorkload() workload.Params {
	return workload.Params{
		Topology: "linear", Switches: 4, TSFlows: 24, Hops: 2,
		WireSize: 200, SlotUs: 65, Seed: 1,
	}
}

// NewInstance builds the managed network and starts its control loop.
// A durable instance (opts.Store set) starts recovering: the replay
// job is the first thing the loop runs, ahead of any submitted work.
func NewInstance(opts InstanceOptions) (*Instance, error) {
	if opts.Workload.Topology == "" {
		opts.Workload = DefaultWorkload()
	}
	if opts.WatchdogInterval <= 0 {
		opts.WatchdogInterval = sim.Millisecond
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 16
	}
	wl, err := workload.Build(opts.Workload)
	if err != nil {
		return nil, fmt.Errorf("svc: instance workload: %w", err)
	}
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design: wl.Design, Topo: wl.Topo, Flows: wl.Specs,
		Metrics: reg, Seed: opts.Workload.Seed,
		EnableWatchdog: true, WatchdogInterval: opts.WatchdogInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("svc: instance build: %w", err)
	}
	if opts.RetryMax > 0 {
		net.Reconfig.SetRetryPolicy(opts.RetryMax, opts.RetryBackoff)
	}
	in := &Instance{
		net: net, reg: reg, interval: opts.WatchdogInterval,
		store: opts.Store, ckptEvery: opts.CheckpointEvery,
		jobs:     make(chan func(), 64),
		done:     make(chan struct{}),
		live:     net.LiveConfig(),
		OnHealth: opts.OnHealth,
	}
	in.snap.Store(reg.Snapshot())
	if in.store != nil {
		// The write-ahead rule at the commit point: the transaction's
		// intent record becomes stable before the first staged operation
		// mutates the engine, on every attempt.
		net.Reconfig.OnAttempt(func(*reconfig.Txn, int) {
			if err := in.store.st.Sync(); err != nil {
				in.setWALErr(err)
			}
		})
		in.recovering.Store(true)
		img, hold := opts.Recovered, opts.recoverHold
		// Enqueued before loop starts: FIFO guarantees replay runs ahead
		// of any job a handler could submit.
		in.jobs <- func() { in.recoverJob(img, hold) }
	}
	go in.loop()
	return in, nil
}

// loop is the control goroutine: it executes queued jobs in FIFO order
// until Close's sentinel arrives. Every engine call in the process
// happens here.
func (in *Instance) loop() {
	defer close(in.done)
	for job := range in.jobs {
		if job == nil {
			return
		}
		job()
	}
}

// submit queues fn onto the control loop and waits for it to finish.
// The ctx only bounds the enqueue: once accepted, the job runs to
// completion and submit waits for it — callers must do their own
// deadline check inside fn if they want to shed late work.
func (in *Instance) submit(ctx context.Context, fn func()) error {
	if in.closed.Load() {
		return ErrInstanceClosed
	}
	ran := make(chan struct{})
	wrapped := func() { fn(); close(ran) }
	select {
	case in.jobs <- wrapped:
	case <-ctx.Done():
		return ctx.Err()
	case <-in.done:
		return ErrInstanceClosed
	}
	select {
	case <-ran:
		return nil
	case <-in.done:
		// Closed with the job still queued (no handlers should be alive
		// at that point; this is a backstop, not a normal path).
		return ErrInstanceClosed
	}
}

// Close flushes the durable store and stops the control loop. The
// flush job and then the sentinel are FIFO-ordered behind any queued
// work, so accepted jobs resolve, then the WAL is synced and the
// journal checkpointed — a graceful drain and a crash converge to the
// same recovered state. Call only after the HTTP server has drained.
func (in *Instance) Close() {
	if in.closed.CompareAndSwap(false, true) {
		in.jobs <- func() { in.closeFlush() }
		in.jobs <- nil
	}
	<-in.done
}

// closeFlush runs on the loop as the last real job: it makes every
// journaled byte stable before the sentinel can possibly be observed.
func (in *Instance) closeFlush() {
	if in.store == nil {
		return
	}
	// A clean shutdown of a consistent instance folds the journal into
	// a fresh checkpoint; a degraded or still-recovering one just syncs
	// what the WAL already holds — never write a snapshot we are not
	// sure of.
	if !in.recovering.Load() && in.walError() == nil {
		if err := in.checkpoint(); err != nil {
			in.setWALErr(err)
		}
	}
	if err := in.store.st.Sync(); err != nil {
		in.setWALErr(err)
	}
	if err := in.store.st.Close(); err != nil {
		in.setWALErr(err)
	}
}

// checkpoint folds the current journal into a new store generation.
// Loop goroutine only.
func (in *Instance) checkpoint() error {
	in.mu.Lock()
	seq := in.seq
	journal := append([]JournalEntry(nil), in.journal...)
	in.mu.Unlock()
	return in.store.checkpoint(seq, journal)
}

// recoverJob replays the recovered journal image onto the freshly
// built network: one transaction from the build configuration to the
// journal tail, then the journal and sequence numbers install and the
// instance leaves the recovering state — exactly once.
func (in *Instance) recoverJob(img *recoveredImage, hold chan struct{}) {
	if hold != nil {
		<-hold
	}
	err := in.replay(img)
	if err != nil {
		in.mu.Lock()
		in.recoverErr = err
		in.mu.Unlock()
	} else {
		in.finishRecovery()
	}
	in.publish()
	if in.OnHealth != nil {
		in.OnHealth(err == nil && !in.net.Watchdog.Degraded())
	}
}

// finishRecovery de-asserts the recovering state. Guarded so the
// transition happens exactly once no matter how often it is called.
func (in *Instance) finishRecovery() {
	in.recoverOnce.Do(func() {
		in.recovering.Store(false)
		in.recoverEnds.Add(1)
	})
}

// replay drives the network to the recovered journal's tail
// configuration and installs the journal. Loop goroutine only.
func (in *Instance) replay(img *recoveredImage) error {
	if img != nil && len(img.Journal) > 0 {
		tail := img.Journal[len(img.Journal)-1]
		cand := applyJournalConfig(in.net.LiveConfig(), tail.Config)
		if cand != in.net.LiveConfig() {
			txn, err := in.net.Reconfigure(cand)
			if err != nil {
				return fmt.Errorf("svc: replay to journal tail seq %d: %w", tail.Seq, err)
			}
			for txn.State() == reconfig.StatePrepared {
				in.net.Engine.RunUntil(txn.CommitTime() + 1)
			}
			if txn.State() != reconfig.StateCommitted {
				return fmt.Errorf("svc: replay commit resolved %v: %w", txn.State(), txn.Err())
			}
			in.net.Engine.RunFor(in.interval + 1)
			if verr := in.net.VerifyLive(); verr != nil {
				return fmt.Errorf("svc: replay verification: %w", verr)
			}
		}
		if got := ToConfigJSON(in.net.LiveConfig()); got != tail.Config {
			return fmt.Errorf("svc: replayed live config diverges from journal tail seq %d", tail.Seq)
		}
	}
	in.mu.Lock()
	in.live = in.net.LiveConfig()
	if img != nil {
		in.seq = img.Seq
		in.journal = append([]JournalEntry(nil), img.Journal...)
	}
	in.mu.Unlock()
	// Fold the replayed state into a clean generation: the WAL tail is
	// absorbed, a dangling in-flight intent is discarded for good, and
	// the next crash replays from here.
	if err := in.checkpoint(); err != nil {
		return fmt.Errorf("svc: post-recovery checkpoint: %w", err)
	}
	return nil
}

// Recovering reports whether journal replay is still in progress (or
// failed — a failed replay never de-asserts).
func (in *Instance) Recovering() bool { return in.recovering.Load() }

// RecoverErr returns the replay failure, if any.
func (in *Instance) RecoverErr() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.recoverErr
}

// RecoverTransitions returns how many times the recovering state was
// de-asserted; the contract is exactly once for a durable instance.
func (in *Instance) RecoverTransitions() int { return int(in.recoverEnds.Load()) }

// Reconfigure runs one transactional reconfiguration against the live
// network. It serializes onto the control loop; ctx sheds the job if
// it is still queued at expiry, and is ignored from the moment the
// commit begins. On a durable instance the transaction is journaled:
// intent before validation, commit fsynced before the outcome (and
// thus any 2xx) is returned, abort on rejection or rollback.
func (in *Instance) Reconfigure(ctx context.Context, req *ReconfigRequest) (ReconfigOutcome, error) {
	if in.Recovering() {
		return ReconfigOutcome{}, ErrRecovering
	}
	var out ReconfigOutcome
	err := in.submit(ctx, func() {
		// Shed point: the deadline lapsed while queued; nothing staged.
		if ctx.Err() != nil {
			out.Shed = true
			return
		}
		cand := req.Candidate(in.net.LiveConfig())
		var txnID uint64
		if in.store != nil {
			txnID = in.store.takeTxn()
			candJSON := ToConfigJSON(cand)
			if err := in.store.append(walRecord{T: recIntent, Txn: txnID, Config: &candJSON}); err != nil {
				out.WALErr = err
				in.setWALErr(err)
				return
			}
		}
		txn, err := in.net.Reconfigure(cand)
		if err != nil {
			out.RejectErr = err
			in.abortTxn(txnID)
			in.publish()
			return
		}
		// From here the commit is in flight: run the engine to the
		// commit instant (and through bounded retries) regardless of
		// the request deadline.
		for txn.State() == reconfig.StatePrepared {
			in.net.Engine.RunUntil(txn.CommitTime() + 1)
		}
		// Let the watchdog audit the post-commit state before replying.
		in.net.Engine.RunFor(in.interval + 1)
		out.State = txn.State()
		out.Attempts = txn.Attempts()
		out.CommitAt = txn.CommitTime()
		out.Err = txn.Err()
		out.VerifyErr = in.net.VerifyLive()
		out.Config = in.net.LiveConfig()

		committed := out.State == reconfig.StateCommitted && out.VerifyErr == nil
		if in.store != nil {
			if committed {
				cfgJSON := ToConfigJSON(out.Config)
				// in.seq is only ever written on this goroutine; the
				// unlocked read is ordered by program order.
				rec := walRecord{T: recCommit, Txn: txnID, Seq: in.seq + 1, Config: &cfgJSON}
				if err := in.store.appendSync(rec); err != nil {
					// The engine committed but durability failed: the ack
					// must not be sent, and the instance is degraded until
					// an operator intervenes.
					out.WALErr = err
					in.setWALErr(err)
				}
			} else {
				in.abortTxn(txnID)
			}
		}

		in.mu.Lock()
		in.live = out.Config
		in.verifyErr = out.VerifyErr
		if committed && out.WALErr == nil {
			in.seq++
			out.Seq = in.seq
			in.journal = append(in.journal, JournalEntry{Seq: in.seq, Config: ToConfigJSON(out.Config)})
		}
		seq := in.seq
		in.mu.Unlock()
		if committed && out.WALErr == nil && in.store != nil && seq%uint64(in.ckptEvery) == 0 {
			if err := in.checkpoint(); err != nil {
				in.setWALErr(err)
			}
		}
		in.publish()
		if in.OnHealth != nil {
			in.OnHealth(out.VerifyErr == nil && !in.net.Watchdog.Degraded())
		}
	})
	return out, err
}

// abortTxn journals a transaction's abort record (durable instances
// only). Unsynced by design: an abort that a crash loses replays as
// the same fully-absent transaction.
func (in *Instance) abortTxn(txnID uint64) {
	if in.store == nil {
		return
	}
	if err := in.store.append(walRecord{T: recAbort, Txn: txnID}); err != nil {
		// A lost abort record leaves a dangling interior intent for the
		// next recovery to trip over; surface the degradation now.
		in.setWALErr(err)
	}
}

// Advance runs the simulated network forward by d (watchdog audits
// included) — the idle-time heartbeat that keeps health fresh.
func (in *Instance) Advance(ctx context.Context, d sim.Time) error {
	return in.submit(ctx, func() {
		in.net.Engine.RunFor(d)
		in.publish()
		if in.OnHealth != nil {
			in.OnHealth(in.verifyError() == nil && !in.net.Watchdog.Degraded())
		}
	})
}

// ArmTransient arms n transient mid-commit failures before staged op
// index op on the next commit attempts (chaos hook).
func (in *Instance) ArmTransient(op, times int) error {
	return in.submit(context.Background(), func() { in.net.Reconfig.ArmTransient(op, times) })
}

// ArmWedge arms a wedged mid-commit failure: the applied prefix stays
// in place while the transaction claims rolled-back (chaos hook; the
// post-commit VerifyLive catches it and trips the breaker).
func (in *Instance) ArmWedge(op int) error {
	return in.submit(context.Background(), func() { in.net.Reconfig.ArmWedge(op) })
}

// publish stores a fresh registry snapshot for HTTP readers; loop
// goroutine only.
func (in *Instance) publish() { in.snap.Store(in.reg.Snapshot()) }

// MetricsSnapshot returns the last published simulation-registry
// snapshot.
func (in *Instance) MetricsSnapshot() metrics.Snapshot {
	return in.snap.Load().(metrics.Snapshot)
}

// Health returns the live health board (watchdog-written, mutex-
// guarded, safe from any goroutine). A durability or replay failure
// degrades the instance like a wedged commit does.
func (in *Instance) Health() (degraded bool, detail string) {
	d, detail, _, _ := in.net.Health.Status()
	in.mu.Lock()
	verifyErr, walErr, recoverErr := in.verifyErr, in.walErr, in.recoverErr
	in.mu.Unlock()
	switch {
	case recoverErr != nil && detail == "":
		detail = "recovery failed: " + recoverErr.Error()
	case walErr != nil && detail == "":
		detail = "durability failed: " + walErr.Error()
	}
	return d || verifyErr != nil || walErr != nil || recoverErr != nil, detail
}

func (in *Instance) verifyError() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.verifyErr
}

func (in *Instance) walError() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.walErr
}

func (in *Instance) setWALErr(err error) {
	in.mu.Lock()
	if in.walErr == nil {
		in.walErr = err
	}
	in.mu.Unlock()
}

// Status copies the control state.
func (in *Instance) Status() InstanceStatus {
	in.mu.Lock()
	defer in.mu.Unlock()
	degraded, detail, _, _ := in.net.Health.Status()
	return InstanceStatus{
		Live:      in.live,
		Seq:       in.seq,
		Journal:   append([]JournalEntry(nil), in.journal...),
		VerifyErr: in.verifyErr,
		Degraded:  degraded || in.verifyErr != nil || in.walErr != nil || in.recoverErr != nil,
		Detail:    detail,
	}
}

// LiveConfig returns the configuration the controller believes is in
// force.
func (in *Instance) LiveConfig() core.Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.live
}
