package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// ErrInstanceClosed marks work submitted after the instance shut down.
var ErrInstanceClosed = errors.New("svc: instance closed")

// InstanceOptions configures the managed testbed instance.
type InstanceOptions struct {
	// Workload selects the managed network; the zero value picks a
	// small linear default.
	Workload workload.Params
	// RetryMax/RetryBackoff configure the reconfiguration engine's
	// bounded commit retry (absorbs transient staging failures).
	RetryMax     int
	RetryBackoff sim.Time
	// WatchdogInterval is the invariant audit period (default 1 ms of
	// simulated time). After every commit the instance advances the
	// simulation one interval so the watchdog sweeps the post-commit
	// state before the response is written.
	WatchdogInterval sim.Time
}

// JournalEntry is one committed reconfiguration: the sequence number
// returned to the client and the configuration it put in force. The
// journal is the accepted-then-lost oracle's ground truth — every 2xx
// response must appear here, and the tail entry must match LiveConfig.
type JournalEntry struct {
	Seq    uint64     `json:"seq"`
	Config ConfigJSON `json:"config"`
}

// InstanceStatus is a point-in-time copy of the instance's control
// state, safe to read from any goroutine.
type InstanceStatus struct {
	Live      core.Config
	Seq       uint64
	Journal   []JournalEntry
	VerifyErr error
	Degraded  bool
	Detail    string
}

// ReconfigOutcome is one processed reconfiguration job's result.
type ReconfigOutcome struct {
	// Shed is set when the job's deadline expired before the commit
	// began; nothing was staged or touched.
	Shed bool
	// RejectErr is a validation rejection (the candidate cannot apply).
	RejectErr error
	// State/Attempts/CommitAt describe the resolved transaction.
	State    reconfig.State
	Attempts int
	CommitAt sim.Time
	// Err is the rollback cause for a failed commit.
	Err error
	// VerifyErr is a post-commit VerifyLive failure: partial state was
	// left in place (the wedged-commit signature).
	VerifyErr error
	// Seq/Config are set for a committed, verified transaction.
	Seq    uint64
	Config core.Config
}

// Instance owns one long-running simulated network and the single
// control-loop goroutine through which every engine interaction is
// serialized — the discrete-event engine is single-threaded by
// contract, so HTTP handlers never touch it directly. Reconfiguration
// jobs queue onto the loop and commit one at a time; a job whose
// deadline expires while queued is shed before anything is staged, but
// once a commit begins it always runs to resolution — an in-flight
// commit is never aborted.
type Instance struct {
	net      *testbed.Net
	reg      *metrics.Registry
	interval sim.Time

	jobs   chan func()
	closed atomic.Bool
	done   chan struct{}

	// snap is the last published registry snapshot (obs pattern: HTTP
	// readers only ever see published copies).
	snap atomic.Value // metrics.Snapshot

	// OnHealth, when set, is invoked after every job with the
	// instance's health — the service wires it into the circuit
	// breaker so watchdog recovery de-escalates an open breaker.
	OnHealth func(healthy bool)

	mu        sync.Mutex
	live      core.Config
	seq       uint64
	journal   []JournalEntry
	verifyErr error
}

// DefaultWorkload is the managed instance's fallback network.
func DefaultWorkload() workload.Params {
	return workload.Params{
		Topology: "linear", Switches: 4, TSFlows: 24, Hops: 2,
		WireSize: 200, SlotUs: 65, Seed: 1,
	}
}

// NewInstance builds the managed network and starts its control loop.
func NewInstance(opts InstanceOptions) (*Instance, error) {
	if opts.Workload.Topology == "" {
		opts.Workload = DefaultWorkload()
	}
	if opts.WatchdogInterval <= 0 {
		opts.WatchdogInterval = sim.Millisecond
	}
	wl, err := workload.Build(opts.Workload)
	if err != nil {
		return nil, fmt.Errorf("svc: instance workload: %w", err)
	}
	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design: wl.Design, Topo: wl.Topo, Flows: wl.Specs,
		Metrics: reg, Seed: opts.Workload.Seed,
		EnableWatchdog: true, WatchdogInterval: opts.WatchdogInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("svc: instance build: %w", err)
	}
	if opts.RetryMax > 0 {
		net.Reconfig.SetRetryPolicy(opts.RetryMax, opts.RetryBackoff)
	}
	in := &Instance{
		net: net, reg: reg, interval: opts.WatchdogInterval,
		jobs: make(chan func(), 64),
		done: make(chan struct{}),
		live: net.LiveConfig(),
	}
	in.snap.Store(reg.Snapshot())
	go in.loop()
	return in, nil
}

// loop is the control goroutine: it executes queued jobs in FIFO order
// until Close's sentinel arrives. Every engine call in the process
// happens here.
func (in *Instance) loop() {
	defer close(in.done)
	for job := range in.jobs {
		if job == nil {
			return
		}
		job()
	}
}

// submit queues fn onto the control loop and waits for it to finish.
// The ctx only bounds the enqueue: once accepted, the job runs to
// completion and submit waits for it — callers must do their own
// deadline check inside fn if they want to shed late work.
func (in *Instance) submit(ctx context.Context, fn func()) error {
	if in.closed.Load() {
		return ErrInstanceClosed
	}
	ran := make(chan struct{})
	wrapped := func() { fn(); close(ran) }
	select {
	case in.jobs <- wrapped:
	case <-ctx.Done():
		return ctx.Err()
	case <-in.done:
		return ErrInstanceClosed
	}
	select {
	case <-ran:
		return nil
	case <-in.done:
		// Closed with the job still queued (no handlers should be alive
		// at that point; this is a backstop, not a normal path).
		return ErrInstanceClosed
	}
}

// Close drains queued jobs and stops the control loop. Call only after
// the HTTP server has drained: the sentinel is FIFO-ordered behind any
// queued work, so accepted jobs still resolve first.
func (in *Instance) Close() {
	if in.closed.CompareAndSwap(false, true) {
		in.jobs <- nil
	}
	<-in.done
}

// Reconfigure runs one transactional reconfiguration against the live
// network. It serializes onto the control loop; ctx sheds the job if
// it is still queued at expiry, and is ignored from the moment the
// commit begins.
func (in *Instance) Reconfigure(ctx context.Context, req *ReconfigRequest) (ReconfigOutcome, error) {
	var out ReconfigOutcome
	err := in.submit(ctx, func() {
		// Shed point: the deadline lapsed while queued; nothing staged.
		if ctx.Err() != nil {
			out.Shed = true
			return
		}
		cand := req.Candidate(in.net.LiveConfig())
		txn, err := in.net.Reconfigure(cand)
		if err != nil {
			out.RejectErr = err
			in.publish()
			return
		}
		// From here the commit is in flight: run the engine to the
		// commit instant (and through bounded retries) regardless of
		// the request deadline.
		for txn.State() == reconfig.StatePrepared {
			in.net.Engine.RunUntil(txn.CommitTime() + 1)
		}
		// Let the watchdog audit the post-commit state before replying.
		in.net.Engine.RunFor(in.interval + 1)
		out.State = txn.State()
		out.Attempts = txn.Attempts()
		out.CommitAt = txn.CommitTime()
		out.Err = txn.Err()
		out.VerifyErr = in.net.VerifyLive()
		out.Config = in.net.LiveConfig()

		in.mu.Lock()
		in.live = out.Config
		in.verifyErr = out.VerifyErr
		if out.State == reconfig.StateCommitted && out.VerifyErr == nil {
			in.seq++
			out.Seq = in.seq
			in.journal = append(in.journal, JournalEntry{Seq: in.seq, Config: ToConfigJSON(out.Config)})
		}
		in.mu.Unlock()
		in.publish()
		if in.OnHealth != nil {
			in.OnHealth(out.VerifyErr == nil && !in.net.Watchdog.Degraded())
		}
	})
	return out, err
}

// Advance runs the simulated network forward by d (watchdog audits
// included) — the idle-time heartbeat that keeps health fresh.
func (in *Instance) Advance(ctx context.Context, d sim.Time) error {
	return in.submit(ctx, func() {
		in.net.Engine.RunFor(d)
		in.publish()
		if in.OnHealth != nil {
			in.OnHealth(in.verifyError() == nil && !in.net.Watchdog.Degraded())
		}
	})
}

// ArmTransient arms n transient mid-commit failures before staged op
// index op on the next commit attempts (chaos hook).
func (in *Instance) ArmTransient(op, times int) error {
	return in.submit(context.Background(), func() { in.net.Reconfig.ArmTransient(op, times) })
}

// ArmWedge arms a wedged mid-commit failure: the applied prefix stays
// in place while the transaction claims rolled-back (chaos hook; the
// post-commit VerifyLive catches it and trips the breaker).
func (in *Instance) ArmWedge(op int) error {
	return in.submit(context.Background(), func() { in.net.Reconfig.ArmWedge(op) })
}

// publish stores a fresh registry snapshot for HTTP readers; loop
// goroutine only.
func (in *Instance) publish() { in.snap.Store(in.reg.Snapshot()) }

// MetricsSnapshot returns the last published simulation-registry
// snapshot.
func (in *Instance) MetricsSnapshot() metrics.Snapshot {
	return in.snap.Load().(metrics.Snapshot)
}

// Health returns the live health board (watchdog-written, mutex-
// guarded, safe from any goroutine).
func (in *Instance) Health() (degraded bool, detail string) {
	d, detail, _, _ := in.net.Health.Status()
	return d || in.verifyError() != nil, detail
}

func (in *Instance) verifyError() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.verifyErr
}

// Status copies the control state.
func (in *Instance) Status() InstanceStatus {
	in.mu.Lock()
	defer in.mu.Unlock()
	degraded, detail, _, _ := in.net.Health.Status()
	return InstanceStatus{
		Live:      in.live,
		Seq:       in.seq,
		Journal:   append([]JournalEntry(nil), in.journal...),
		VerifyErr: in.verifyErr,
		Degraded:  degraded || in.verifyErr != nil,
		Detail:    detail,
	}
}

// LiveConfig returns the configuration the controller believes is in
// force.
func (in *Instance) LiveConfig() core.Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.live
}
