package svc

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's time in tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3/3 failures = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if got := b.TransToOpen.Value(); got != 1 {
		t.Fatalf("TransToOpen = %d", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("streak did not reset: state = %v", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	clk.advance(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe in flight.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("probe success left state %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure left state %v", b.State())
	}
	// Cooldown restarted: still rejecting just before it elapses again.
	clk.advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("restarted cooldown did not hold")
	}
	clk.advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe rejected after restarted cooldown")
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second)
	if got := b.RetryAfter(); got != time.Second {
		t.Fatalf("closed RetryAfter = %v", got)
	}
	b.Failure()
	if got := b.RetryAfter(); got != 10*time.Second {
		t.Fatalf("open RetryAfter = %v", got)
	}
	clk.advance(9500 * time.Millisecond)
	if got := b.RetryAfter(); got != time.Second {
		t.Fatalf("nearly-elapsed RetryAfter = %v (want floor 1s)", got)
	}
}
