package svc

import (
	"sync"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states. Closed admits everything; Open rejects everything
// until the cooldown elapses; HalfOpen admits exactly one probe whose
// outcome decides between Closed and Open.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is the reconfiguration path's circuit breaker: consecutive
// commit failures trip it open, the cooldown de-escalates it to
// half-open, and a successful probe (which in the service is a commit
// that passes the post-commit verification with the watchdog healthy)
// closes it. While open, reconfiguration requests are rejected in
// constant time with Retry-After — a wedged network is not made worse
// by a queue of doomed transactions.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool
	now       func() time.Time

	// Transitions counts state entries by target state; StateGauge
	// mirrors the current state (0 closed, 1 open, 2 half-open).
	TransToOpen, TransToHalfOpen, TransToClosed metrics.SyncCounter
	StateGauge                                  metrics.SyncGauge
}

// NewBreaker returns a closed breaker tripping after `threshold`
// consecutive failures and probing again `cooldown` after opening.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In half-open state only
// one in-flight probe is admitted; everyone else is rejected until the
// probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy outcome: the failure streak resets and the
// breaker closes from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure records a failed commit. A closed breaker trips open at the
// threshold; a half-open probe failure re-opens immediately and
// restarts the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = b.now()
		b.setState(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.setState(BreakerOpen)
		}
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long a rejected caller should wait before
// retrying — the remaining cooldown, rounded up to a whole second.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return time.Second
	}
	left := b.cooldown - b.now().Sub(b.openedAt)
	if left < time.Second {
		left = time.Second
	}
	return left.Round(time.Second)
}

// setState moves to s with telemetry; call with mu held.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.StateGauge.Set(int64(s))
	switch s {
	case BreakerOpen:
		b.TransToOpen.Inc()
	case BreakerHalfOpen:
		b.TransToHalfOpen.Inc()
	case BreakerClosed:
		b.TransToClosed.Inc()
	}
}
