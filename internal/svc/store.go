package svc

// The durable store is the crash-consistency layer under the managed
// instance: every accepted reconfiguration is journaled to a
// write-ahead log as intent → commit/abort records around the
// single-writer commit path, and the instance's control state is
// periodically folded into an atomically-renamed checkpoint with WAL
// rotation (internal/wal).
//
// Record discipline, per transaction, all on the control loop:
//
//	intent  {txn, candidate config}   appended before validation, made
//	                                  stable at the commit point (the
//	                                  reconfig.OnAttempt hook syncs it
//	                                  before the first staged op runs);
//	commit  {txn, seq, config}        appended and fsynced after the
//	                                  transaction verified in force —
//	                                  the 2xx ack is written only after
//	                                  this sync returns;
//	abort   {txn}                     appended for rejections and
//	                                  rollbacks (durable at the next
//	                                  commit's sync; losing one in a
//	                                  crash is harmless — replay treats
//	                                  a trailing unpaired intent as the
//	                                  in-flight transaction that died).
//
// Replay rebuilds the journal from checkpoint + WAL tail: commit
// records must be seq-gapless, and an unpaired intent anywhere but the
// tail is loud corruption (the single-writer loop never interleaves
// transactions).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/wal"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// WAL record types.
const (
	recIntent = "intent"
	recCommit = "commit"
	recAbort  = "abort"
)

// walRecord is one durable control-plane event.
type walRecord struct {
	T   string `json:"t"`
	Txn uint64 `json:"txn"`
	// Seq is set on commit records: the journal position acknowledged
	// to the client.
	Seq uint64 `json:"seq,omitempty"`
	// Config is the candidate (intent) or committed (commit)
	// configuration.
	Config *ConfigJSON `json:"config,omitempty"`
}

// checkpointImage is the snapshot a checkpoint file holds: everything
// needed to answer /v1/journal and /v1/config without the WAL.
type checkpointImage struct {
	// WorkloadHash pins the state to the managed workload: a state dir
	// from a differently-parameterized instance is refused, not
	// misapplied.
	WorkloadHash string `json:"workload_hash"`
	// Seq is the last committed sequence number.
	Seq uint64 `json:"seq"`
	// NextTxn is the next transaction id to assign.
	NextTxn uint64 `json:"next_txn"`
	// Journal is the committed-transaction journal, gapless from 1.
	Journal []JournalEntry `json:"journal"`
}

// recoveredImage is the replayed durable state handed to the instance.
type recoveredImage struct {
	Seq     uint64
	NextTxn uint64
	Journal []JournalEntry
	// Tail reports whether the WAL ended in an unpaired intent — the
	// in-flight transaction the crash interrupted. It recovered as
	// fully absent (diagnostic only).
	DanglingIntent bool
}

// workloadHash fingerprints the managed workload's parameters.
func workloadHash(p workload.Params) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf(
		"%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		p.Topology, p.Switches, p.TSFlows, p.Hops, p.WireSize, p.SlotUs,
		p.RCMbps, p.BEMbps, p.FRERFlows, p.TSDeadline, p.Seed)))
	return hex.EncodeToString(sum[:8])
}

// durableStore owns the wal.Store plus the control-plane framing over
// it. Loop-goroutine only, like every other engine-adjacent mutation.
type durableStore struct {
	st      *wal.Store
	wlHash  string
	nextTxn uint64
}

// openDurable opens the state directory and replays checkpoint + WAL
// tail into a recoveredImage. Interior corruption, sequence gaps,
// interleaved intents and workload mismatches all fail loudly — a
// control plane that cannot trust its journal must not serve one.
func openDurable(dir string, wlHash string) (*durableStore, *recoveredImage, error) {
	st, rec, err := wal.OpenStore(dir)
	if err != nil {
		return nil, nil, err
	}
	img, err := replayDurable(rec, wlHash)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	ds := &durableStore{st: st, wlHash: wlHash, nextTxn: img.NextTxn}
	return ds, img, nil
}

// replayDurable folds a recovered checkpoint and WAL tail into the
// journal image.
func replayDurable(rec *wal.Recovered, wlHash string) (*recoveredImage, error) {
	img := &recoveredImage{NextTxn: 1}
	if rec.Checkpoint != nil {
		var ck checkpointImage
		if err := json.Unmarshal(rec.Checkpoint, &ck); err != nil {
			return nil, fmt.Errorf("svc: checkpoint decode: %w", err)
		}
		if ck.WorkloadHash != wlHash {
			return nil, fmt.Errorf("svc: state dir belongs to workload %s, this instance is %s — refusing to mix journals",
				ck.WorkloadHash, wlHash)
		}
		for i, e := range ck.Journal {
			if e.Seq != uint64(i)+1 {
				return nil, fmt.Errorf("svc: checkpoint journal entry %d has seq %d: gap", i, e.Seq)
			}
		}
		if ck.Seq != uint64(len(ck.Journal)) {
			return nil, fmt.Errorf("svc: checkpoint seq %d disagrees with journal length %d", ck.Seq, len(ck.Journal))
		}
		img.Seq = ck.Seq
		img.NextTxn = max(ck.NextTxn, 1)
		img.Journal = append(img.Journal, ck.Journal...)
	}
	openIntent := false
	var openTxn uint64
	for i, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("svc: wal record %d decode: %w", i, err)
		}
		switch r.T {
		case recIntent:
			if openIntent {
				return nil, fmt.Errorf("svc: wal record %d: intent txn %d while txn %d is still open — interleaved transactions", i, r.Txn, openTxn)
			}
			if r.Config == nil {
				return nil, fmt.Errorf("svc: wal record %d: intent without candidate config", i)
			}
			openIntent, openTxn = true, r.Txn
			if r.Txn >= img.NextTxn {
				img.NextTxn = r.Txn + 1
			}
		case recCommit:
			if !openIntent || r.Txn != openTxn {
				return nil, fmt.Errorf("svc: wal record %d: commit for txn %d without its intent", i, r.Txn)
			}
			if r.Config == nil {
				return nil, fmt.Errorf("svc: wal record %d: commit without config", i)
			}
			if r.Seq != img.Seq+1 {
				return nil, fmt.Errorf("svc: wal record %d: commit seq %d after seq %d — journal gap", i, r.Seq, img.Seq)
			}
			img.Seq = r.Seq
			img.Journal = append(img.Journal, JournalEntry{Seq: r.Seq, Config: *r.Config})
			openIntent = false
		case recAbort:
			if !openIntent || r.Txn != openTxn {
				return nil, fmt.Errorf("svc: wal record %d: abort for txn %d without its intent", i, r.Txn)
			}
			openIntent = false
		default:
			return nil, fmt.Errorf("svc: wal record %d: unknown type %q", i, r.T)
		}
	}
	// A trailing unpaired intent is the transaction the crash caught
	// in flight: it was never acknowledged, and replaying it as absent
	// is exactly the fully-present-or-fully-absent rule.
	img.DanglingIntent = openIntent
	return img, nil
}

// takeTxn assigns the next transaction id.
func (ds *durableStore) takeTxn() uint64 {
	id := ds.nextTxn
	ds.nextTxn++
	return id
}

// append writes one record without syncing.
func (ds *durableStore) append(r walRecord) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("svc: wal encode: %w", err)
	}
	return ds.st.Append(raw)
}

// appendSync writes one record and makes the whole log durable — the
// commit point an ack may be sent after.
func (ds *durableStore) appendSync(r walRecord) error {
	if err := ds.append(r); err != nil {
		return err
	}
	return ds.st.Sync()
}

// checkpoint folds the given control state into a new checkpoint
// generation, rotating the WAL.
func (ds *durableStore) checkpoint(seq uint64, journal []JournalEntry) error {
	raw, err := json.Marshal(checkpointImage{
		WorkloadHash: ds.wlHash,
		Seq:          seq,
		NextTxn:      ds.nextTxn,
		Journal:      journal,
	})
	if err != nil {
		return fmt.Errorf("svc: checkpoint encode: %w", err)
	}
	return ds.st.Checkpoint(raw)
}

// applyJournalConfig overlays a journal entry's live-reconfigurable
// fields onto a freshly built configuration: the replay candidate.
// Non-wire fields (shared-pool mode, template selection) stay whatever
// the fresh build chose — the journal only ever moved these six.
func applyJournalConfig(live core.Config, j ConfigJSON) core.Config {
	live.UnicastSize = j.UnicastSize
	live.MulticastSize = j.MulticastSize
	live.ClassSize = j.ClassSize
	live.MeterSize = j.MeterSize
	live.QueueDepth = j.QueueDepth
	live.BufferNum = j.BufferNum
	return live
}
