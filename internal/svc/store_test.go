package svc

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/tsnbuilder/tsnbuilder/internal/wal"
)

// waitRecovered polls until the instance has left the recovering state.
func waitRecovered(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Instance().Recovering() {
		if time.Now().After(deadline) {
			t.Fatalf("instance still recovering after 10s: %v", s.Instance().RecoverErr())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newDurableService is newTestService plus a state directory and
// recovery wait.
func newDurableService(t *testing.T, dir string, opts Options) (*Service, string) {
	t.Helper()
	opts.StateDir = dir
	s, ts := newTestService(t, opts)
	waitRecovered(t, s)
	return s, ts.URL
}

// TestServiceStatePersistence is the durability round trip: commit
// through HTTP, shut down cleanly, reopen the same state directory and
// observe byte-identical journal and live config — no replayed request
// lost, none invented.
func TestServiceStatePersistence(t *testing.T) {
	dir := t.TempDir()
	s1, url1 := newDurableService(t, dir, Options{})
	live := s1.Instance().LiveConfig()

	deltas := []string{
		`{"unicast_size":` + jsonInt(live.UnicastSize*2) + `}`,
		`{"meter_size":` + jsonInt(live.MeterSize*2) + `}`,
		`{"queue_depth":` + jsonInt(live.QueueDepth*2) + `}`,
	}
	for i, d := range deltas {
		resp, body := postJSON(t, url1+"/v1/reconfig", d, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconfig %d: %d %s", i, resp.StatusCode, body)
		}
	}
	var journal1 []JournalEntry
	getJSON(t, url1+"/v1/journal", &journal1)
	var cfg1 ConfigJSON
	getJSON(t, url1+"/v1/config", &cfg1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()

	// A validation rejection (aborted txn) before shutdown must not
	// reappear, and the three commits must all survive.
	s2, url2 := newDurableService(t, dir, Options{})
	var journal2 []JournalEntry
	getJSON(t, url2+"/v1/journal", &journal2)
	if len(journal2) != len(journal1) {
		t.Fatalf("reopened journal has %d entries, want %d", len(journal2), len(journal1))
	}
	for i := range journal1 {
		if journal1[i] != journal2[i] {
			t.Fatalf("journal entry %d: %+v reopened as %+v", i, journal1[i], journal2[i])
		}
	}
	var cfg2 ConfigJSON
	getJSON(t, url2+"/v1/config", &cfg2)
	if cfg1 != cfg2 {
		t.Fatalf("live config %+v reopened as %+v", cfg1, cfg2)
	}
	// The sequence counter continues, never restarts: the next commit is
	// seq len+1.
	live2 := s2.Instance().LiveConfig()
	resp, body := postJSON(t, url2+"/v1/reconfig",
		`{"unicast_size":`+jsonInt(live2.UnicastSize*2)+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reopen reconfig: %d %s", resp.StatusCode, body)
	}
	var rr ReconfigResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(journal1) + 1); rr.Seq != want {
		t.Fatalf("post-reopen seq = %d, want %d", rr.Seq, want)
	}
}

// TestServiceRecoveringReadyz pins the recovering window's contract:
// while replay is stalled /readyz reports the distinct "recovering"
// status and the control endpoints refuse with 503; when replay lands
// the state de-asserts exactly once and readiness follows.
func TestServiceRecoveringReadyz(t *testing.T) {
	dir := t.TempDir()
	// Seed the state directory with one committed transaction.
	s0, url0 := newDurableService(t, dir, Options{})
	live := s0.Instance().LiveConfig()
	if resp, body := postJSON(t, url0+"/v1/reconfig",
		`{"unicast_size":`+jsonInt(live.UnicastSize*2)+`}`, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed reconfig: %d %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s0.Shutdown(ctx)
	cancel()

	hold := make(chan struct{})
	s, ts := newTestService(t, Options{StateDir: dir, recoverHold: hold})

	// Replay is stalled on the hold: the window is observable.
	resp, body := getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("recovering readyz: %d %s", resp.StatusCode, body)
	}
	var rz struct {
		Ready   bool     `json:"ready"`
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Ready || rz.Status != "recovering" || len(rz.Reasons) == 0 {
		t.Fatalf("recovering readyz body: %s", body)
	}
	for _, ep := range []string{"/v1/config", "/v1/journal"} {
		if resp, _ := getRaw(t, ts.URL+ep); resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("recovering %s: %d, want 503", ep, resp.StatusCode)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/reconfig", `{"meter_size":64}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "recovering") {
		t.Fatalf("recovering reconfig: %d %s", resp.StatusCode, body)
	}

	close(hold)
	waitRecovered(t, s)
	resp, body = getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery readyz: %d %s", resp.StatusCode, body)
	}
	// The de-assertion happened exactly once.
	if n := s.Instance().RecoverTransitions(); n != 1 {
		t.Fatalf("recovering de-asserted %d times, want exactly 1", n)
	}
	// And the replayed journal is intact.
	var journal []JournalEntry
	getJSON(t, ts.URL+"/v1/journal", &journal)
	if len(journal) != 1 || journal[0].Seq != 1 {
		t.Fatalf("replayed journal: %+v", journal)
	}
}

// TestServiceDrainReopenEquivalence: Close flushes and syncs the WAL
// before the sentinel returns, so a graceful drain and a reopen observe
// the same state a crash immediately after the last ack would — the
// checkpoint absorbs the full journal (fresh generation) and nothing
// depends on the torn-tail path.
func TestServiceDrainReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	s1, url1 := newDurableService(t, dir, Options{CheckpointEvery: 100})
	live := s1.Instance().LiveConfig()
	for i := 0; i < 3; i++ {
		live.UnicastSize *= 2
		resp, body := postJSON(t, url1+"/v1/reconfig",
			`{"unicast_size":`+jsonInt(live.UnicastSize)+`}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconfig %d: %d %s", i, resp.StatusCode, body)
		}
	}
	before := s1.Instance().Status()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()

	// Reopen replays from the close-time checkpoint: every pre-drain
	// commit present, in order, byte-identical.
	s2, _ := newDurableService(t, dir, Options{CheckpointEvery: 100})
	after := s2.Instance().Status()
	if after.Seq != before.Seq || len(after.Journal) != len(before.Journal) {
		t.Fatalf("drained seq %d/%d entries, reopened %d/%d",
			before.Seq, len(before.Journal), after.Seq, len(after.Journal))
	}
	for i := range before.Journal {
		if before.Journal[i] != after.Journal[i] {
			t.Fatalf("journal entry %d: %+v reopened as %+v", i, before.Journal[i], after.Journal[i])
		}
	}
	if ToConfigJSON(before.Live) != ToConfigJSON(after.Live) {
		t.Fatalf("live config changed across drain: %+v vs %+v", before.Live, after.Live)
	}
}

// TestServiceStateDirWorkloadMismatch: a state directory carries its
// workload's fingerprint; opening it under different parameters refuses
// rather than replaying a journal onto the wrong network.
func TestServiceStateDirWorkloadMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := newDurableService(t, dir, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s.Shutdown(ctx)
	cancel()

	other := testWorkload()
	other.TSFlows += 2
	if _, err := NewService(Options{Workload: other, StateDir: dir}); err == nil {
		t.Fatal("mismatched workload accepted a foreign state dir")
	} else if !strings.Contains(err.Error(), "workload") {
		t.Fatalf("mismatch error: %v", err)
	}
}

// TestReplayDurableRecordDiscipline exercises the WAL replay state
// machine directly: gapless commits accumulate, a trailing unpaired
// intent is the fully-absent in-flight transaction, and structural
// violations (gaps, interleaving, orphan commits) are loud.
func TestReplayDurableRecordDiscipline(t *testing.T) {
	cfg := ConfigJSON{UnicastSize: 64}
	enc := func(recs ...walRecord) [][]byte {
		var out [][]byte
		for _, r := range recs {
			raw, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, raw)
		}
		return out
	}
	intent := func(txn uint64) walRecord { return walRecord{T: recIntent, Txn: txn, Config: &cfg} }
	commit := func(txn, seq uint64) walRecord { return walRecord{T: recCommit, Txn: txn, Seq: seq, Config: &cfg} }

	t.Run("clean pair plus dangling intent", func(t *testing.T) {
		img, err := replayDurable(&wal.Recovered{Records: enc(
			intent(1), commit(1, 1), intent(2),
		)}, "h")
		if err != nil {
			t.Fatal(err)
		}
		if img.Seq != 1 || len(img.Journal) != 1 || !img.DanglingIntent {
			t.Fatalf("image: %+v", img)
		}
		if img.NextTxn != 3 {
			t.Fatalf("next txn = %d, want 3", img.NextTxn)
		}
	})
	t.Run("abort closes the transaction", func(t *testing.T) {
		img, err := replayDurable(&wal.Recovered{Records: enc(
			intent(1), walRecord{T: recAbort, Txn: 1}, intent(2), commit(2, 1),
		)}, "h")
		if err != nil || img.Seq != 1 || img.DanglingIntent {
			t.Fatalf("img %+v, err %v", img, err)
		}
	})
	for name, recs := range map[string][]walRecord{
		"interleaved intents":   {intent(1), intent(2)},
		"orphan commit":         {commit(1, 1)},
		"commit wrong txn":      {intent(1), commit(2, 1)},
		"seq gap":               {intent(1), commit(1, 2)},
		"orphan abort":          {walRecord{T: recAbort, Txn: 1}},
		"unknown type":          {{T: "mystery", Txn: 1}},
		"intent without config": {{T: recIntent, Txn: 1}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := replayDurable(&wal.Recovered{Records: enc(recs...)}, "h"); err == nil {
				t.Fatal("structural violation replayed silently")
			}
		})
	}
}

// TestServiceCheckpointRotation: with CheckpointEvery=2 the store
// rotates generations as commits land, and a reopen from the newest
// checkpoint still reconstructs the exact journal.
func TestServiceCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s1, url1 := newDurableService(t, dir, Options{CheckpointEvery: 2})
	live := s1.Instance().LiveConfig()
	for i := 0; i < 5; i++ {
		live.UnicastSize *= 2
		resp, body := postJSON(t, url1+"/v1/reconfig",
			`{"unicast_size":`+jsonInt(live.UnicastSize)+`}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconfig %d: %d %s", i, resp.StatusCode, body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()

	s2, url2 := newDurableService(t, dir, Options{CheckpointEvery: 2})
	var journal []JournalEntry
	getJSON(t, url2+"/v1/journal", &journal)
	if len(journal) != 5 {
		t.Fatalf("rotated journal has %d entries, want 5", len(journal))
	}
	for i, e := range journal {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("entry %d seq %d", i, e.Seq)
		}
	}
	if got := ToConfigJSON(s2.Instance().LiveConfig()).UnicastSize; got != live.UnicastSize {
		t.Fatalf("live unicast %d, want %d", got, live.UnicastSize)
	}
}
