package svc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	q := NewClassQueue("t", 2, 4)
	r1, err := q.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Running(); got != 2 {
		t.Fatalf("Running = %d", got)
	}
	r1()
	r2()
	if got := q.Running(); got != 0 {
		t.Fatalf("Running after release = %d", got)
	}
}

func TestAdmissionShedsBeyondWaitBound(t *testing.T) {
	q := NewClassQueue("t", 1, 0) // 1 slot, nobody may wait
	release, err := q.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Acquire(context.Background(), false); !errors.Is(err, ErrShed) {
		t.Fatalf("full queue returned %v, want ErrShed", err)
	}
	if got := q.ShedFull.Value(); got != 1 {
		t.Fatalf("ShedFull = %d", got)
	}
	release()
	release, err = q.Acquire(context.Background(), false)
	if err != nil {
		t.Fatalf("slot freed but Acquire failed: %v", err)
	}
	release()
}

func TestAdmissionPressureShed(t *testing.T) {
	q := NewClassQueue("t", 4, 8)
	if _, err := q.Acquire(context.Background(), true); !errors.Is(err, ErrShed) {
		t.Fatalf("pressured Acquire returned %v, want ErrShed", err)
	}
	if got := q.ShedPressure.Value(); got != 1 {
		t.Fatalf("ShedPressure = %d", got)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	q := NewClassQueue("t", 1, 4)
	release, err := q.Acquire(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Acquire(ctx, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire returned %v, want DeadlineExceeded", err)
	}
	if got := q.ShedDeadline.Value(); got != 1 {
		t.Fatalf("ShedDeadline = %d", got)
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("Depth after deadline shed = %d", got)
	}
	release()
}

// TestAdmissionQueueDepthBounded hammers a tiny queue from many
// goroutines and checks the depth gauge never exceeds the wait bound —
// the acceptance criterion's "queue-depth gauge stays bounded".
func TestAdmissionQueueDepthBounded(t *testing.T) {
	const maxWait = 3
	q := NewClassQueue("t", 1, maxWait)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := q.Acquire(context.Background(), false)
			if err != nil {
				return // shed — fine
			}
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	wg.Wait()
	if hw := q.DepthHW.Value(); hw > maxWait {
		t.Fatalf("depth high water %d exceeded wait bound %d", hw, maxWait)
	}
	if q.ShedFull.Value() == 0 {
		t.Fatal("expected at least one queue-full shed under the hammer")
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("Depth after drain = %d", got)
	}
}

func TestAdmissionPressuredThreshold(t *testing.T) {
	a := NewAdmission(2, 4, 5)
	if a.Pressured() {
		t.Fatal("empty backlog reported pressured")
	}
	// 80% of 5 = 4 waiting trips the pressure threshold.
	a.Reconfig.Waiting.Add(4)
	if !a.Pressured() {
		t.Fatal("4/5 backlog not reported pressured")
	}
	a.Reconfig.Waiting.Add(-4)
}
