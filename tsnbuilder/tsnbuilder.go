// Package tsnbuilder is the public API of the TSN-Builder library: a
// template-based developing model for rapidly customizing
// resource-efficient Time-Sensitive Networking switches (Yan et al.,
// DAC 2020).
//
// The top-down workflow:
//
//  1. Describe the application scenario — topology (Star/Ring/Linear)
//     and flows (GenerateTS/Background), bind paths with BindPaths.
//  2. Derive the resource parameters with DeriveConfig (the §III.C
//     guidelines: tables sized to the flow count, CQF gate tables of
//     two entries, queue depth from Injection Time Planning).
//  3. Feed the parameters through the Table II customization APIs of a
//     Builder (SetSwitchTbl … SetBuffers) — or use BuilderFor — and
//     Build a Design.
//  4. Inspect the Design's platform memory report, and instantiate the
//     network with the testbed package to measure latency, jitter and
//     loss.
package tsnbuilder

import (
	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/resource"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// Builder and design types.
type (
	// Builder accumulates resource parameters through the Table II
	// customization APIs.
	Builder = core.Builder
	// Config is the complete resource specification.
	Config = core.Config
	// Design is a completed customization with its memory report.
	Design = core.Design
	// Template is one of the five function templates.
	Template = core.Template
	// Platform abstracts the implementation target's memory model.
	Platform = core.Platform
	// FPGA is the paper's Xilinx BRAM cost model.
	FPGA = core.FPGA
	// ASIC is an exact-size SRAM cost model.
	ASIC = core.ASIC
)

// Scenario derivation.
type (
	// Scenario is the application-level input of the top-down flow.
	Scenario = core.Scenario
	// Derivation is DeriveConfig's output.
	Derivation = core.Derivation
	// Plan is an Injection Time Planning result.
	Plan = itp.Plan
)

// Traffic and topology.
type (
	// FlowSpec describes one TS/RC/BE flow.
	FlowSpec = flows.Spec
	// TSParams configures GenerateTS.
	TSParams = flows.TSParams
	// Topology is a switch-level network graph.
	Topology = topology.Topology
	// Report is a platform memory breakdown.
	Report = resource.Report
	// Time is a simulated instant/duration in nanoseconds.
	Time = sim.Time
	// Rate is a bandwidth in bits per second.
	Rate = ethernet.Rate
	// Class is a TSN traffic class.
	Class = ethernet.Class
)

// Fault injection (robustness testing).
type (
	// FaultScenario is a deterministic fault script for the testbed.
	FaultScenario = faults.Scenario
	// Fault is one scheduled fault within a scenario.
	Fault = faults.Fault
)

// Time and rate units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Mbps        = ethernet.Mbps
	Gbps        = ethernet.Gbps
)

// Traffic classes.
const (
	ClassTS = ethernet.ClassTS
	ClassRC = ethernet.ClassRC
	ClassBE = ethernet.ClassBE
)

// The five function templates.
const (
	TemplateTimeSync      = core.TemplateTimeSync
	TemplatePacketSwitch  = core.TemplatePacketSwitch
	TemplateIngressFilter = core.TemplateIngressFilter
	TemplateGateCtrl      = core.TemplateGateCtrl
	TemplateEgressSched   = core.TemplateEgressSched
)

// NewBuilder starts a customization against platform (nil = FPGA).
func NewBuilder(platform Platform) *Builder { return core.NewBuilder(platform) }

// BuilderFor returns a Builder pre-loaded with cfg.
func BuilderFor(cfg Config, platform Platform) *Builder { return core.BuilderFor(cfg, platform) }

// DeriveConfig computes resource parameters from a scenario per the
// paper's §III.C guidelines.
func DeriveConfig(sc Scenario) (*Derivation, error) { return core.DeriveConfig(sc) }

// BindPaths fills each flow's switch path from the topology.
func BindPaths(topo *Topology, specs []*FlowSpec) error { return core.BindPaths(topo, specs) }

// CommercialProfile returns the Broadcom BCM53154 baseline
// configuration of §IV.B.
func CommercialProfile() Config { return core.CommercialProfile() }

// PaperCustomizedConfig returns the customized Table III column for the
// given enabled-port count (3 = star, 2 = linear, 1 = ring).
func PaperCustomizedConfig(ports int) Config { return core.PaperCustomizedConfig(ports) }

// AllTemplates lists the five templates in pipeline order.
func AllTemplates() []Template { return core.AllTemplates() }

// DiffConfigs reports the customization-API parameters that differ
// between two configurations — the reconfiguration delta when a
// scenario changes.
func DiffConfigs(old, new Config) []string { return core.DiffConfigs(old, new) }

// Star builds a star topology with the given child count (core = 0).
func Star(children int) *Topology { return topology.Star(children) }

// Ring builds an n-switch unidirectional ring.
func Ring(n int) *Topology { return topology.Ring(n) }

// RingBidir builds an n-switch bidirectional ring — the topology class
// with two disjoint paths between any switch pair, which 802.1CB FRER
// needs for seamless redundancy.
func RingBidir(n int) *Topology { return topology.RingBidir(n) }

// Linear builds an n-switch bidirectional chain.
func Linear(n int) *Topology { return topology.Linear(n) }

// Tree builds a two-level aggregation tree (root, spines, leaves).
func Tree(spines, leaves int) *Topology { return topology.Tree(spines, leaves) }

// GenerateTS builds a periodic TS workload (IEC 60802-style features).
func GenerateTS(p TSParams) []*FlowSpec { return flows.GenerateTS(p) }

// Background builds one RC or BE background flow (1024 B frames).
func Background(id uint32, class Class, src, dst int, vid uint16, rate Rate) *FlowSpec {
	return flows.Background(id, class, src, dst, vid, rate)
}

// PlanITP runs Injection Time Planning standalone.
func PlanITP(specs []*FlowSpec, slot Time) (*Plan, error) {
	return itp.Compute(specs, slot, nil)
}

// LoadFaultScenario reads and validates a fault-scenario JSON file for
// testbed.Options.Faults.
func LoadFaultScenario(path string) (*FaultScenario, error) { return faults.Load(path) }
