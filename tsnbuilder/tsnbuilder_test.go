package tsnbuilder_test

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

// TestFacadeWorkflow exercises the documented top-down workflow through
// the public API only.
func TestFacadeWorkflow(t *testing.T) {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    256,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts:    func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:     1,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	base, err := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if design.Report.ReductionVs(base.Report) <= 0 {
		t.Fatal("customized design not smaller than commercial")
	}
}

func TestFacadeTableIIINumbers(t *testing.T) {
	base, _ := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), nil).Build()
	ring, _ := tsnbuilder.BuilderFor(tsnbuilder.PaperCustomizedConfig(1), nil).Build()
	if base.Report.TotalKb() != 10818 || ring.Report.TotalKb() != 2106 {
		t.Fatalf("totals = %v / %v", base.Report.TotalKb(), ring.Report.TotalKb())
	}
}

func TestFacadeManualBuilder(t *testing.T) {
	design, err := tsnbuilder.NewBuilder(tsnbuilder.ASIC{}).
		SetSwitchTbl(512, 0).
		SetClassTbl(512).
		SetMeterTbl(512).
		SetGateTbl(2, 8, 2).
		SetCBSTbl(3, 3, 2).
		SetQueues(8, 8, 2).
		SetBuffers(64, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if design.Platform.Name() != "asic-sram" {
		t.Fatal("platform not propagated")
	}
}

func TestFacadePlanITP(t *testing.T) {
	topo := tsnbuilder.Linear(4)
	topo.AttachHost(1, 0)
	topo.AttachHost(2, 3)
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count: 16, Period: 2 * tsnbuilder.Millisecond, WireSize: 128,
		Hosts: func(i int) (int, int) { return 1, 2 },
		Seed:  2,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	plan, err := tsnbuilder.PlanITP(specs, 65*tsnbuilder.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxOccupancy < 1 {
		t.Fatal("empty plan")
	}
	if len(tsnbuilder.AllTemplates()) != 5 {
		t.Fatal("template list wrong")
	}
}
