package tsnbuilder_test

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

// ExampleBuilder shows the raw Table II customization APIs: the ring
// column of the paper's Table III, built by hand.
func ExampleBuilder() {
	design, err := tsnbuilder.NewBuilder(tsnbuilder.FPGA{}).
		SetSwitchTbl(1024, 0).
		SetClassTbl(1024).
		SetMeterTbl(1024).
		SetGateTbl(2, 8, 1).
		SetCBSTbl(3, 3, 1).
		SetQueues(12, 8, 1).
		SetBuffers(96, 1).
		Build()
	if err != nil {
		fmt.Println("build failed:", err)
		return
	}
	fmt.Printf("total BRAM: %.0fKb\n", design.Report.TotalKb())
	// Output:
	// total BRAM: 2106Kb
}

// ExampleCommercialProfile prices the paper's BCM53154 baseline.
func ExampleCommercialProfile() {
	design, _ := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), nil).Build()
	fmt.Printf("commercial BRAM: %.0fKb\n", design.Report.TotalKb())
	// Output:
	// commercial BRAM: 10818Kb
}

// ExampleDeriveConfig runs the §III.C guidelines on a small scenario.
func ExampleDeriveConfig() {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    128,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts:    func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:     1,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		fmt.Println(err)
		return
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("tables: %d entries, ports: %d, queue depth: %d, buffers/port: %d\n",
		der.Config.UnicastSize, der.Config.PortNum, der.Config.QueueDepth, der.Config.BufferNum)
	// Output:
	// tables: 128 entries, ports: 1, queue depth: 2, buffers/port: 16
}

// ExampleDiffConfigs shows the reconfiguration delta between the
// paper's linear and ring customizations.
func ExampleDiffConfigs() {
	linear := tsnbuilder.PaperCustomizedConfig(2)
	ring := tsnbuilder.PaperCustomizedConfig(1)
	for _, line := range tsnbuilder.DiffConfigs(linear, ring) {
		fmt.Println(line)
	}
	// Output:
	// per-port APIs: port_num 2 → 1
}
