module github.com/tsnbuilder/tsnbuilder

go 1.22
