// Star-production-cell models an IEC 60802-style production cell: a
// core switch fans out to three cell switches, each serving a machine
// controller. The example customizes the switches for the cell's exact
// flow set, verifies the customized network delivers the same QoS as
// one built with commercial-profile resources, and prints the memory
// both configurations cost.
//
// Run: go run ./examples/star-production-cell
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/testbed"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

// buildNet assembles the star network with the given configuration.
func buildNet(cfg tsnbuilder.Config, seed uint64) (*testbed.Net, error) {
	topo := tsnbuilder.Star(3)
	// Controllers on the three cell switches (1..3).
	for c := 1; c <= 3; c++ {
		topo.AttachHost(100+c, c)
	}
	// Cross-cell control loops: every controller talks to the next,
	// 512 flows total, 128 B frames every 2 ms.
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    512,
		Period:   2 * tsnbuilder.Millisecond,
		WireSize: 128,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := 1 + i%3
			return 100 + src, 100 + (src%3 + 1)
		},
		Seed: seed,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		return nil, err
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		return nil, err
	}
	der.Plan.Apply(specs)
	if cfg.PortNum == 0 {
		cfg = der.Config // use the derived customization
	}
	design, err := tsnbuilder.BuilderFor(cfg, nil).Build()
	if err != nil {
		return nil, err
	}
	return testbed.Build(testbed.Options{Design: design, Topo: topo, Flows: specs, Seed: seed})
}

func main() {
	run := func(label string, cfg tsnbuilder.Config) tsnbuilder.Time {
		net, err := buildNet(cfg, 21)
		if err != nil {
			log.Fatal(err)
		}
		net.Run(0, 100*tsnbuilder.Millisecond)
		s := net.Summary(tsnbuilder.ClassTS)
		fmt.Printf("%-22s mean %8.1fµs  jitter %6.2fµs  loss %.2f%%  misses %d\n",
			label, s.MeanLatency.Micros(), s.Jitter.Micros(), 100*s.LossRate, s.DeadlineMisses)
		return s.MeanLatency
	}

	fmt.Println("production cell, 512 control flows @ 2ms, 128B:")
	customized := run("customized resources:", tsnbuilder.Config{})
	commercial := run("commercial resources:", tsnbuilder.CommercialProfile())
	diff := customized - commercial
	if diff < 0 {
		diff = -diff
	}
	fmt.Printf("latency difference: %v (same QoS)\n\n", diff)

	// Price both designs.
	topo := tsnbuilder.Star(3)
	for c := 1; c <= 3; c++ {
		topo.AttachHost(100+c, c)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count: 512, Period: 2 * tsnbuilder.Millisecond, WireSize: 128, VID: 1,
		Hosts: func(i int) (int, int) { src := 1 + i%3; return 100 + src, 100 + (src%3 + 1) },
		Seed:  21,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	custom, _ := tsnbuilder.BuilderFor(der.Config, nil).Build()
	base, _ := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), nil).Build()
	fmt.Printf("customized BRAM: %7.0fKb\ncommercial BRAM: %7.0fKb\nsaved: %.2f%%\n",
		custom.Report.TotalKb(), base.Report.TotalKb(),
		100*custom.Report.ReductionVs(base.Report))
}
