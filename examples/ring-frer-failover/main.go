// Ring-frer-failover demonstrates 802.1CB seamless redundancy (FRER)
// on a bidirectional ring: a talker on switch 0 replicates every TS
// frame onto two disjoint paths (clockwise through 1-2-3, counter-
// clockwise through 5-4-3), and the listener on switch 3 runs the
// sequence-recovery function that eliminates the duplicate copies.
// Halfway through the run a fault scenario hard-kills the trunk between
// switches 1 and 2 — the middle of the primary path.
//
// The same cut is replayed twice: with FRER the listener never misses a
// frame (the surviving member stream keeps delivering); without it,
// every frame sent after the cut dies at the downed link, each one
// attributed to the fault in the telemetry registry.
//
// Run: go run ./examples/ring-frer-failover
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/testbed"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func run(withFRER bool) {
	topo := tsnbuilder.RingBidir(6)
	topo.AttachHost(100, 0) // talker
	topo.AttachHost(101, 3) // listener

	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    8,
		Period:   tsnbuilder.Millisecond,
		WireSize: 128,
		VID:      1,
		Hosts:    func(int) (int, int) { return 100, 101 },
		Seed:     7,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
		if withFRER {
			s.FRER = true
			s.AltVID = uint16(1000 + i) // member stream rides its own VLAN
		}
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}

	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		log.Fatal(err)
	}

	// Cut the clockwise trunk between switches 1 and 2 at t = 50 ms and
	// never restore it.
	a, b := 1, 2
	scenario := &tsnbuilder.FaultScenario{Faults: []tsnbuilder.Fault{
		{AtUs: 50_000, Kind: "link-down", A: &a, B: &b},
	}}

	reg := metrics.New()
	net, err := testbed.Build(testbed.Options{
		Design:  design,
		Topo:    topo,
		Flows:   specs,
		Seed:    7,
		Metrics: reg,
		Faults:  scenario,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(0, 100*tsnbuilder.Millisecond)

	ts := net.Summary(tsnbuilder.ClassTS)
	mode := "without FRER"
	if withFRER {
		mode = "with FRER   "
	}
	fmt.Printf("%s: sent %4d  received %4d  lost %3d  duplicates eliminated %4d  max latency %7.1fµs\n",
		mode, ts.Sent, ts.Received, ts.Lost, ts.Duplicates, ts.MaxLat.Micros())
	if drops := reg.SumCounter("tsn_link_drops_total"); drops > 0 {
		fmt.Printf("              %d frames died at the downed link (all accounted)\n", drops)
	}
	if withFRER {
		for _, it := range design.Report.Items {
			if it.Name == "FRER Tbl" {
				fmt.Printf("              eighth resource class: %s (%s) = %d BRAM bits\n",
					it.Name, it.Params, it.Bits)
			}
		}
	}
}

func main() {
	fmt.Println("6-switch bidirectional ring, 8 TS flows 0→3, trunk 1-2 cut at 50 ms:")
	run(true)
	run(false)
	fmt.Println("\nFRER turns a hard link failure into zero-loss operation;")
	fmt.Println("without it the outage costs exactly the frames sent after the cut.")
}
