// Quickstart: customize a resource-efficient TSN switch for a 6-node
// ring carrying 1024 periodic time-sensitive flows, and compare its
// on-chip memory against the commercial (BCM53154-class) baseline.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func main() {
	// 1. Describe the application scenario: a unidirectional ring of
	// six switches with one end device per switch.
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}

	// 1024 TS flows, 10 ms period, 64 B frames — the IEC 60802-style
	// production-line workload of the paper's evaluation.
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    1024,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 42,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}

	// 2. Derive the resource parameters from the scenario (§III.C):
	// tables sized to the flow count, CQF gate tables of two entries,
	// queue depth from Injection Time Planning.
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ITP: worst queue occupancy %d → provisioned depth %d\n\n",
		der.Plan.MaxOccupancy, der.Config.QueueDepth)

	// 3. Push the parameters through the Table II customization APIs
	// and build the design for the FPGA platform.
	design, err := tsnbuilder.BuilderFor(der.Config, tsnbuilder.FPGA{}).Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare against the commercial switch profile.
	baseline, err := tsnbuilder.BuilderFor(tsnbuilder.CommercialProfile(), tsnbuilder.FPGA{}).Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Report.String())
	fmt.Println()
	fmt.Print(baseline.Report.String())
	fmt.Printf("\non-chip memory saved: %.2f%%\n", 100*design.Report.ReductionVs(baseline.Report))
}
