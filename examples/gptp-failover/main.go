// Gptp-failover exercises the Time Sync template's full 802.1AS
// behaviour: six switches elect a grandmaster with the Best Master
// Clock Algorithm (Announce messages flooding the ring), discipline
// their oscillators to sub-50 ns, and when the grandmaster dies
// mid-operation the survivors re-elect and re-converge — the
// self-healing TSN networks rely on.
//
// Run: go run ./examples/gptp-failover
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/gptp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func main() {
	engine := sim.NewEngine()
	dom := gptp.NewDomain(engine, gptp.DefaultConfig())

	// Six switches with distinct oscillator qualities; switch 2 carries
	// the best clock (lowest clockClass).
	drifts := []clock.PPB{31_000, -44_000, 5_000, 27_000, -12_000, 48_000}
	nodes := make([]*gptp.Node, 6)
	for i, d := range drifts {
		nodes[i] = dom.AddNode(i, d, sim.Time(i)*80*sim.Microsecond)
	}
	for i := range nodes {
		dom.Connect(nodes[i], nodes[(i+1)%6], 400*sim.Nanosecond)
	}
	// The backup master sits next to the primary: when both have died
	// (parts one and two below) the survivors still form a connected
	// segment of the ring, so the BMCA can re-converge.
	dom.SetPriority(nodes[2], gptp.PriorityVector{Priority1: 100, ClockClass: 6, ClockID: 2})
	dom.SetPriority(nodes[3], gptp.PriorityVector{Priority1: 110, ClockClass: 7, ClockID: 3})

	gm, err := dom.ElectAndAssume()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elected grandmaster: switch %d (priority %+v)\n", gm.ID, gm.Priority())

	dom.Start()
	engine.RunUntil(2 * sim.Second)
	fmt.Printf("after 2s:  worst offset %v\n", dom.MaxAbsOffset())

	fmt.Printf("\n*** switch %d fails ***\n", gm.ID)
	if err := dom.FailNode(gm); err != nil {
		log.Fatal(err)
	}
	newGM := dom.Grandmaster()
	fmt.Printf("re-elected grandmaster: switch %d (priority %+v)\n", newGM.ID, newGM.Priority())

	engine.RunFor(3 * sim.Second)
	fmt.Printf("after re-convergence: worst offset %v (target < 50ns)\n", dom.MaxAbsOffset())

	// An administrative FailNode announces itself; a crash does not.
	// Arm the 802.1AS sync-receipt watchdog (three missed sync
	// intervals) and kill the new grandmaster silently: detection,
	// re-election and servo re-convergence all have to happen on their
	// own. The time from crash to re-entering the 50 ns band is the
	// reconvergence time the testbed asserts a bound on.
	dom.EnableAutoFailover(3 * gptp.DefaultConfig().SyncInterval)
	crashed := dom.Grandmaster()
	fmt.Printf("\n*** switch %d crashes silently (watchdog armed) ***\n", crashed.ID)
	crashAt := engine.Now()
	dom.KillNode(crashed)
	for i := 0; i < 100; i++ {
		engine.RunFor(50 * sim.Millisecond)
		if dom.Grandmaster() != crashed && dom.MaxAbsOffset() < 50*sim.Nanosecond {
			break
		}
	}
	survivor := dom.Grandmaster()
	if survivor == crashed {
		log.Fatal("watchdog never detected the crashed grandmaster")
	}
	fmt.Printf("watchdog re-elected switch %d; reconverged to %v in %v\n",
		survivor.ID, dom.MaxAbsOffset(), engine.Now()-crashAt)

	for _, st := range dom.Stats() {
		fmt.Printf("  switch %d: %4d syncs, %d steps, offset %v\n",
			st.NodeID, st.SyncCount, st.StepCount, st.Offset)
	}
}
