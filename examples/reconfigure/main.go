// Reconfigure demonstrates the paper's headline development-effort
// claim: "when the application scenario changes, users only need to
// regulate the related parameters and reuse these templates without
// reprogramming." A production line starts with 256 control flows,
// then an expansion doubles the workload and tightens periods — the
// example re-derives the resource parameters, prints exactly which
// customization-API calls change, and prices both designs.
//
// Run: go run ./examples/reconfigure
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

// derive builds a design for the given flow count and period.
func derive(flowCount int, period tsnbuilder.Time) (*tsnbuilder.Derivation, *tsnbuilder.Design) {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    flowCount,
		Period:   period,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 4,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		log.Fatal(err)
	}
	return der, design
}

func main() {
	fmt.Println("phase 1: 256 control flows @ 10ms")
	derA, designA := derive(256, 10*tsnbuilder.Millisecond)
	fmt.Println(derA.Config.String())
	fmt.Printf("→ %.0fKb BRAM\n\n", designA.Report.TotalKb())

	fmt.Println("phase 2: plant expansion — 512 flows @ 5ms")
	derB, designB := derive(512, 5*tsnbuilder.Millisecond)
	fmt.Printf("→ %.0fKb BRAM\n\n", designB.Report.TotalKb())

	fmt.Println("parameters to regulate (everything else reuses the templates):")
	diff := tsnbuilder.DiffConfigs(derA.Config, derB.Config)
	if len(diff) == 0 {
		fmt.Println("  (none — the existing switches already fit)")
	}
	for _, line := range diff {
		fmt.Println("  " + line)
	}
	fmt.Printf("\nmemory delta: %+.0fKb\n", designB.Report.TotalKb()-designA.Report.TotalKb())
}
