// Ring-industrial reproduces the paper's Fig. 6 demo in software: six
// customized TSN switches in a unidirectional ring, TSNNic testers
// injecting 1024 periodic TS flows plus rate-constrained and
// best-effort background traffic, gPTP synchronizing every switch
// clock, and the analyzer reporting per-class latency, jitter and loss.
//
// Run: go run ./examples/ring-industrial
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/testbed"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func main() {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h) // TS end devices
		topo.AttachHost(200+h, h) // background injectors
	}

	// 1024 TS flows traversing three switches each; per-flow VLANs keep
	// the classification entries distinct.
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    1024,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 7,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	// Background: 200 Mbps RC + 200 Mbps BE from three injectors.
	id := uint32(100_000)
	for src := 0; src < 3; src++ {
		specs = append(specs,
			tsnbuilder.Background(id, tsnbuilder.ClassRC, 200+src, 100+(src+2)%6,
				uint16(3000+src), 200*tsnbuilder.Mbps))
		id++
		specs = append(specs,
			tsnbuilder.Background(id, tsnbuilder.ClassBE, 200+src, 100+(src+2)%6,
				uint16(3200+src), 200*tsnbuilder.Mbps))
		id++
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}

	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		log.Fatal(err)
	}

	net, err := testbed.Build(testbed.Options{
		Design:     design,
		Topo:       topo,
		Flows:      specs,
		EnableGPTP: true,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two seconds of gPTP convergence, then 100 ms of traffic.
	fmt.Println("running 6-switch ring with gPTP and 400 Mbps background…")
	net.Run(2*tsnbuilder.Second, 100*tsnbuilder.Millisecond)

	for _, cls := range []tsnbuilder.Class{tsnbuilder.ClassTS, tsnbuilder.ClassRC, tsnbuilder.ClassBE} {
		s := net.Summary(cls)
		if s.Flows == 0 {
			continue
		}
		fmt.Printf("%-3s: %4d flows  sent %6d  lost %4d  mean %8.1fµs  jitter %6.2fµs  max %8.1fµs\n",
			cls, s.Flows, s.Sent, s.Lost, s.MeanLatency.Micros(), s.Jitter.Micros(), s.MaxLat.Micros())
	}
	ts := net.Summary(tsnbuilder.ClassTS)
	fmt.Printf("\nTS deadline misses: %d of %d\n", ts.DeadlineMisses, ts.Received)
	fmt.Printf("gPTP worst offset at end: %v (claim: < 50ns)\n", net.Domain.MaxAbsOffset())
	fmt.Printf("worst TS queue occupancy: %d (provisioned depth %d)\n",
		net.MaxQueueHighWater(), der.Config.QueueDepth)
}
