// Platform-compare demonstrates the platform-independence of the
// customization APIs: the same Table II parameter set is priced on the
// FPGA BRAM model (18/36 Kb blocks, the paper's Zynq 7020 target) and
// on an exact-size ASIC SRAM model. It also prints the five function
// templates with their Fig. 5 submodule structure.
//
// Run: go run ./examples/platform-compare
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func main() {
	fmt.Println("TSN-Builder function templates (Fig. 5):")
	for _, t := range tsnbuilder.AllTemplates() {
		fmt.Printf("  %-15s", t)
		for i, sub := range t.Submodules() {
			if i > 0 {
				fmt.Print(" → ")
			} else {
				fmt.Print(" ")
			}
			fmt.Print(sub)
		}
		fmt.Println()
	}
	fmt.Println()

	// One parameter set — the paper's ring customization — priced on
	// two platforms through the same APIs.
	cfg := tsnbuilder.PaperCustomizedConfig(1)
	for _, platform := range []tsnbuilder.Platform{tsnbuilder.FPGA{}, tsnbuilder.ASIC{}} {
		design, err := tsnbuilder.BuilderFor(cfg, platform).Build()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(design.Report.String())
		fmt.Println()
	}

	// A reduced design: a pure CQF switch without the Egress Sched
	// template (no CBS) — template selection drops its tables.
	reduced, err := tsnbuilder.NewBuilder(tsnbuilder.FPGA{}).
		Select(tsnbuilder.TemplateTimeSync, tsnbuilder.TemplatePacketSwitch,
			tsnbuilder.TemplateIngressFilter, tsnbuilder.TemplateGateCtrl).
		SetSwitchTbl(1024, 0).
		SetClassTbl(1024).
		SetMeterTbl(1024).
		SetGateTbl(2, 8, 1).
		SetQueues(12, 8, 1).
		SetBuffers(96, 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced design (no Egress Sched): %.0fKb with templates %v\n",
		reduced.Report.TotalKb(), reduced.Templates)
}
