// Live-reconfigure demonstrates transactional reconfiguration of a
// RUNNING switch network — the dynamic counterpart of the static
// `reconfigure` example. A 6-switch ring carries 60 TS control flows;
// mid-run, a plant expansion doubles the workload:
//
//  1. the doubled scenario is re-derived (same templates, bigger
//     parameters), and the delta is applied as one transaction that
//     validates against live state, stages per-resource operations,
//     and commits atomically at a CQF cycle boundary;
//  2. the 60 new flows are programmed into the grown tables and start
//     injecting — every TS frame of all 120 flows arrives (zero loss);
//  3. a mid-apply failure is then injected into a further transaction:
//     every already-applied operation is reverted and the observable
//     configuration is byte-for-byte the pre-transaction state;
//  4. finally an inapplicable candidate (a structural change) is
//     rejected at validation, before anything is touched.
//
// Run: go run ./examples/live-reconfigure
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/testbed"
)

// genFlows produces n TS flows with ids/vids offset by base so two
// batches coexist in the classification tables.
func genFlows(n int, base uint32, seed uint64) []*flows.Spec {
	specs := flows.GenerateTS(flows.TSParams{
		Count: n, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:  seed,
	})
	for i, s := range specs {
		s.ID = base + uint32(i)
		s.VID = uint16(base + uint32(i))
	}
	return specs
}

func main() {
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	initial := genFlows(60, 1, 11)
	if err := core.BindPaths(topo, initial); err != nil {
		log.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: initial})
	if err != nil {
		log.Fatal(err)
	}
	der.Plan.Apply(initial)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		log.Fatal(err)
	}
	net, err := testbed.Build(testbed.Options{
		Design: design, Topo: topo, Flows: initial, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: 60 TS control flows @ 10ms on a 6-switch ring")
	fmt.Println(der.Config.String())

	// Re-derive for the doubled plant. The new ITP plan carries
	// injection offsets for the incoming batch; the running flows keep
	// the offsets they were planned with.
	extra := genFlows(60, 1000, 13)
	if err := core.BindPaths(topo, extra); err != nil {
		log.Fatal(err)
	}
	all := append(append([]*flows.Spec{}, initial...), extra...)
	der2, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: all})
	if err != nil {
		log.Fatal(err)
	}
	der2.Plan.Apply(extra)

	fmt.Println("\nphase 2: plant expansion to 120 flows — parameters to regulate live:")
	for _, line := range core.DiffConfigs(der.Config, der2.Config) {
		fmt.Println("  " + line)
	}

	var grow, failed *reconfig.Txn
	net.Engine.At(20*sim.Millisecond, "grow", func(*sim.Engine) {
		if grow, err = net.Reconfigure(der2.Config); err != nil {
			log.Fatal(err)
		}
	})
	net.Engine.At(40*sim.Millisecond, "add-flows", func(*sim.Engine) {
		if grow.State() != reconfig.StateCommitted {
			log.Fatalf("grow transaction: %v (%v)", grow.State(), grow.Err())
		}
		if err := net.AddFlows(extra, 45*sim.Millisecond); err != nil {
			log.Fatal(err)
		}
	})
	// Phase 3: a further grow attempt dies mid-apply (injected fault on
	// its second staged operation) and must roll back completely.
	net.Engine.At(80*sim.Millisecond, "doomed-grow", func(*sim.Engine) {
		net.Reconfig.ArmFailure(1)
		doomed := der2.Config
		doomed.UnicastSize *= 2
		doomed.MeterSize *= 2
		doomed.BufferNum *= 2
		if failed, err = net.Reconfigure(doomed); err != nil {
			log.Fatal(err)
		}
	})

	net.Run(0, 120*sim.Millisecond)

	fmt.Printf("\ncommitted at %v — a CQF cycle boundary (%d staged ops)\n",
		grow.CommitTime(), len(grow.Ops()))
	ts := net.Summary(ethernet.ClassTS)
	fmt.Printf("all flows: sent=%d received=%d lost=%d deadline-misses=%d\n",
		ts.Sent, ts.Received, ts.Lost, ts.DeadlineMisses)
	if ts.Lost != 0 {
		log.Fatal("TS frames were lost across the live reconfiguration")
	}

	fmt.Printf("\nphase 3: injected mid-apply failure → %v\n  %v\n", failed.State(), failed.Err())
	if d := core.DiffConfigs(der2.Config, net.LiveConfig()); len(d) != 0 {
		log.Fatalf("rollback left residue: %v", d)
	}
	fmt.Println("  post-rollback diff vs pre-transaction design: (empty — exact restore)")

	invalid := net.LiveConfig()
	fmt.Printf("\nphase 4: structural change (queue_num %d → 16) proposed live:\n", invalid.QueueNum)
	invalid.QueueNum = 16
	if _, err := net.Reconfigure(invalid); err != nil {
		fmt.Printf("  rejected before anything was touched: %v\n", err)
	} else {
		log.Fatal("structural change was accepted")
	}
}
