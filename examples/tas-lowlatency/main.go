// Tas-lowlatency demonstrates the Gate Ctrl template beyond CQF: the
// same ring network runs first with the paper's 2-entry CQF gate
// tables, then with a synthesized 802.1Qbv Time-Aware Shaper schedule.
// TAS removes the per-hop slot quantization — latency drops from
// hops×65 µs to a few microseconds — while the gate tables grow with
// the number of scheduled windows, which is exactly the resource knob
// the set_gate_tbl customization API exposes.
//
// Run: go run ./examples/tas-lowlatency
package main

import (
	"fmt"
	"log"

	"github.com/tsnbuilder/tsnbuilder/internal/tas"
	"github.com/tsnbuilder/tsnbuilder/testbed"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func workload() (*tsnbuilder.Topology, []*tsnbuilder.FlowSpec) {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    128,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 9,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		log.Fatal(err)
	}
	return topo, specs
}

func main() {
	// --- CQF run ---
	topo, specs := workload()
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		log.Fatal(err)
	}
	net, err := testbed.Build(testbed.Options{Design: design, Topo: topo, Flows: specs})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(0, 100*tsnbuilder.Millisecond)
	cqf := net.Summary(tsnbuilder.ClassTS)
	fmt.Printf("CQF (gate_size=2):    mean %8.1fµs  jitter %6.2fµs  p99 %8.1fµs  loss %.2f%%\n",
		cqf.MeanLatency.Micros(), cqf.Jitter.Micros(), cqf.P99.Micros(), 100*cqf.LossRate)

	// --- TAS run: same workload, synthesized windows ---
	topo2, specs2 := workload()
	sch, err := tas.Synthesize(specs2, topo2, tas.Options{MaxFrameBytes: 64})
	if err != nil {
		log.Fatal(err)
	}
	der2, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo2, Flows: specs2})
	if err != nil {
		log.Fatal(err)
	}
	cfg := der2.Config
	if sch.MaxGateEntries > cfg.GateSize {
		cfg.GateSize = sch.MaxGateEntries
	}
	design2, err := tsnbuilder.BuilderFor(cfg, nil).Build()
	if err != nil {
		log.Fatal(err)
	}
	net2, err := testbed.Build(testbed.Options{Design: design2, Topo: topo2, Flows: specs2})
	if err != nil {
		log.Fatal(err)
	}
	if err := net2.InstallTAS(sch); err != nil {
		log.Fatal(err)
	}
	sch.Apply(specs2)
	net2.Run(0, 100*tsnbuilder.Millisecond)
	tasSum := net2.Summary(tsnbuilder.ClassTS)
	fmt.Printf("TAS (gate_size=%d):  mean %8.1fµs  jitter %6.2fµs  p99 %8.1fµs  loss %.2f%%\n",
		sch.MaxGateEntries,
		tasSum.MeanLatency.Micros(), tasSum.Jitter.Micros(), tasSum.P99.Micros(), 100*tasSum.LossRate)

	wc, err := sch.WorstCaseLatency(specs2[0], topo2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTAS synthesized worst-case bound for flow %d: %v\n", specs2[0].ID, wc)
	fmt.Printf("speedup: %.0f× lower mean latency for %d× larger gate tables\n",
		float64(cqf.MeanLatency)/float64(tasSum.MeanLatency), sch.MaxGateEntries/2)
}
