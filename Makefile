# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test short race vet lint bench bench-json bench-compare fuzz chaos crash examples reproduce clean

all: build vet test

build:
	go build ./...

test:
	go test ./...

short:
	go test -short ./...

race:
	go test -race ./...

vet:
	go vet ./...

# lint = vet + gofmt, plus staticcheck/govulncheck when on PATH (CI
# installs them; local runs degrade gracefully without network access).
lint: vet
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

bench:
	go test -bench=. -benchmem .

# bench-json captures the bench run as JSON (BENCH_<date>.json) for
# regression tracking; -short keeps it at test scale. -count=3 gives
# benchjson three samples per benchmark to collapse best-of-N: macro
# benchmarks jitter by tens of percent on a loaded host, and the
# fastest sample is the one that reflects the code.
bench-json:
	go test -bench=. -benchmem -short -count=3 -timeout=60m . | go run ./cmd/benchjson -o BENCH_$$(date +%Y%m%d).json

# bench-compare gates the current bench run against the committed
# baseline: >20% ns/op slowdown fails, as does any allocs/op increase
# on zero-alloc benchmarks (>0.1% on allocation-heavy ones). Samples
# best-of-3 like bench-json so host noise doesn't trip the gate.
BENCH_BASELINE ?= BENCH_20260808.json
bench-compare:
	go test -bench=. -benchmem -short -count=3 -timeout=60m . | go run ./cmd/benchjson -o /tmp/bench_current.json
	go run ./cmd/benchjson -compare $(BENCH_BASELINE) /tmp/bench_current.json

fuzz:
	go test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/ethernet/
	go test -fuzz=FuzzUnmarshalMessage -fuzztime=30s ./internal/gptp/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/faults/
	go test -fuzz=FuzzWALReader -fuzztime=30s ./internal/wal/

# chaos runs a randomized invariant-checking campaign (fixed default
# seed — rerun with the same profile to reproduce); failing cases leave
# minimal-repro artifacts in chaos-out/.
chaos:
	go run ./cmd/tsnsim -chaos default -chaos-budget 60s -chaos-out chaos-out

# crash runs the fixed-seed kill-anywhere crash-recovery campaign
# against a race-instrumented tsnserve: 50 SIGKILL/WAL-hook kill points,
# each followed by a restart that must recover every acknowledged
# transaction. The durable state lives in crash-state/ (kept on failure
# for inspection, removed on a passing run).
crash:
	rm -rf crash-state
	go build -race -o tsnserve.crash ./cmd/tsnserve
	./tsnserve.crash -crash-chaos -chaos-seed 42 -crash-kills 50 -state-dir crash-state
	rm -rf crash-state tsnserve.crash

examples:
	@for ex in quickstart ring-industrial star-production-cell \
	            platform-compare tas-lowlatency reconfigure gptp-failover \
	            ring-frer-failover live-reconfigure; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; \
	done

reproduce:
	go run ./cmd/tsnbench -exp all

clean:
	go clean ./...
