# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test short race vet bench fuzz examples reproduce clean

all: build vet test

build:
	go build ./...

test:
	go test ./...

short:
	go test -short ./...

race:
	go test -race ./...

vet:
	go vet ./...

bench:
	go test -bench=. -benchmem .

fuzz:
	go test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/ethernet/
	go test -fuzz=FuzzUnmarshalMessage -fuzztime=30s ./internal/gptp/

examples:
	@for ex in quickstart ring-industrial star-production-cell \
	            platform-compare tas-lowlatency reconfigure gptp-failover \
	            ring-frer-failover; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; \
	done

reproduce:
	go run ./cmd/tsnbench -exp all

clean:
	go clean ./...
