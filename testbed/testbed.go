// Package testbed assembles complete simulated TSN networks from a
// TSN-Builder design: it instantiates one switch model per topology
// node, cables trunks and TSNNic end stations, programs the forwarding
// and classification tables for every flow, configures meters and
// credit-based shapers, synchronizes all switch clocks with gPTP, and
// runs the scenario while the analyzer collects latency/jitter/loss —
// the software equivalent of the paper's Fig. 6 demo setup.
package testbed

import (
	"fmt"
	"io"
	stdnet "net"
	"sort"
	"strconv"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/clock"
	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/gate"
	"github.com/tsnbuilder/tsnbuilder/internal/gptp"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/obs"
	"github.com/tsnbuilder/tsnbuilder/internal/pcap"
	"github.com/tsnbuilder/tsnbuilder/internal/psim"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tables"
	"github.com/tsnbuilder/tsnbuilder/internal/tas"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnnic"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// Options configures Build.
type Options struct {
	// Design supplies every switch's resource configuration.
	Design *core.Design
	// Topo is the network shape with hosts already attached.
	Topo *topology.Topology
	// Flows must have paths bound (core.BindPaths).
	Flows []*flows.Spec
	// CableDelay is the propagation delay of every cable (default
	// 100 ns ≈ 20 m).
	CableDelay sim.Time
	// EnableGPTP synchronizes switch clocks over the trunk links; when
	// false all switches share perfect clocks.
	EnableGPTP bool
	// SharedBufferNum, when positive, builds every switch with one
	// shared buffer pool of that size (SMS architecture) instead of the
	// design's per-port pools.
	SharedBufferNum int
	// EnableTrace records per-packet dataplane events from every switch
	// into Net.Tracer (bounded at one million events).
	EnableTrace bool
	// DisableCBS skips credit-based shaper configuration: RC queues
	// run on bare strict priority (the E-CBS ablation's baseline).
	DisableCBS bool
	// Pcap, when non-nil, receives a nanosecond-resolution capture of
	// every frame delivered to an end device.
	Pcap io.Writer
	// AccessRate, when positive, sets the line rate of every host
	// access port (and its NIC) — mixed-speed networks with slower
	// field devices on fast trunks. Zero keeps the design's LinkRate.
	AccessRate ethernet.Rate
	// Metrics, when non-nil, wires every switch, the scheduler, the
	// collector and the gPTP domain into one telemetry registry.
	// Instruments resolve at build time; the hot path pays one atomic-
	// free increment per probe. Nil runs uninstrumented.
	Metrics *metrics.Registry
	// Seed drives clock drift assignment.
	Seed uint64
	// Faults, when non-nil, schedules the fault scenario on the built
	// network. Fault times (at_us) are absolute simulation time, so with
	// gPTP the warmup window counts too. The seed for probabilistic
	// impairments is Seed unless the scenario carries its own.
	Faults *faults.Scenario
	// EnableWatchdog runs the runtime invariant watchdog: periodic
	// audits of buffer conservation, queue bounds, gate monotonicity
	// and FRER bounds, plus the graceful-degradation policy that sheds
	// BE/RC traffic under buffer pressure before TS is touched.
	EnableWatchdog bool
	// WatchdogInterval overrides the audit period (default 1 ms).
	WatchdogInterval sim.Time
	// Partitions, when > 1, shards the topology across that many
	// engines and runs them in parallel with conservative lookahead
	// (internal/psim). Exported metrics and per-flow statistics are
	// byte-identical to a serial run (the scheduler heap-depth gauge
	// excepted — see DESIGN.md §16). Features that would couple
	// partitions outside the frame channel are rejected at build:
	// gPTP, faults, watchdog, trace, pcap, FRER flows and live
	// reconfiguration. 0 or 1 builds the ordinary serial network.
	Partitions int
}

// Net is a built network ready to run.
type Net struct {
	Engine    *sim.Engine
	Switches  []*tsnswitch.Switch
	NICs      map[int]*tsnnic.NIC
	Collector *analyzer.Collector
	Domain    *gptp.Domain    // nil without gPTP
	Tracer    *trace.Recorder // nil unless EnableTrace
	// Flight is the always-on bounded flight recorder every switch
	// writes into; the attribution layer dumps it on deadline misses,
	// watchdog degradation and fault injection.
	Flight *trace.Flight
	// Attr decomposes every delivery's latency into per-flow component
	// breakdowns; nil unless Options.Metrics is set.
	Attr *obs.Attribution
	// Health is the live health board the telemetry /healthz serves;
	// the watchdog publishes into it.
	Health *obs.Health
	// Server is the live telemetry HTTP server; nil until Serve binds
	// one. Shut it down with Server.Shutdown to drain in-flight
	// requests before exit.
	Server   *obs.Server
	Capture  *pcap.Writer      // nil unless Options.Pcap set
	Metrics  *metrics.Registry // nil unless Options.Metrics set
	Injector *faults.Injector  // nil unless Options.Faults set
	// Reconfig is the transactional live-reconfiguration controller;
	// always present so fault scenarios can arm mid-apply failures.
	Reconfig *reconfig.Controller
	// Watchdog is the runtime invariant auditor; nil unless
	// Options.EnableWatchdog.
	Watchdog *reconfig.Watchdog

	// Partitioned-mode state (nil/zero on serial builds): the per-shard
	// engines with their scratch registries and collectors, the
	// per-switch partition assignment, the host→partition map and the
	// barrier-stepped runner. See partition.go.
	parts    []*part
	assign   []int
	hostPart map[int]int
	runner   *psim.Runner
	merged   bool

	opts  Options
	specs []*flows.Spec
	// liveCfg tracks the configuration currently in force: the design's
	// at build, then each committed reconfiguration's candidate.
	liveCfg core.Config
	// recovery maps listener host → FRER sequence-recovery table.
	recovery          map[int]*frer.Table
	frerCap, frerHist int
	prog              progState
	flowStop          sim.Time
}

// progState is the control plane's incremental programming cursor, so
// flows added mid-run (after a reconfiguration grew the tables) extend
// the original programming instead of recomputing it.
type progState struct {
	// flowIdx counts programmed flows; RC queue assignment cycles on it.
	flowIdx int
	// nextMeter is the next free meter table index.
	nextMeter int
	// reserved is the cumulative RC bandwidth per (switch, port, queue)
	// cell, the input to CBS slope configuration.
	reserved map[pq]ethernet.Rate
	// nextCBS is the next free CBS id per (switch, port) bank; cbsID
	// remembers the shaper already serving a cell.
	nextCBS map[bankKey]int
	cbsID   map[pq]int
}

// pq addresses one (switch, port, queue) cell; bankKey one port's CBS
// bank.
type pq struct{ sw, port, q int }
type bankKey struct{ sw, port int }

// flightCapacity is the always-on flight recorder's ring size: enough
// recent dataplane events to reconstruct the span chain of a deadline
// miss, small enough to keep resident cost bounded (~4 MB).
const flightCapacity = 1 << 16

// cbsStallsName/Help label the credit-based shaper stall counter; one
// definition so serial and partitioned builds register byte-identical
// families.
const (
	cbsStallsName = "tsn_cbs_stalls_total"
	cbsStallsHelp = "egress selections blocked on negative CBS credit"
)

// Build assembles the network.
func Build(opts Options) (*Net, error) {
	if opts.Design == nil || opts.Topo == nil {
		return nil, fmt.Errorf("testbed: missing design or topology")
	}
	if opts.CableDelay == 0 {
		opts.CableDelay = 100 * sim.Nanosecond
	}
	if opts.Partitions > 1 {
		return buildPartitioned(opts)
	}
	engine := sim.NewEngine()
	n := &Net{
		Engine:    engine,
		NICs:      make(map[int]*tsnnic.NIC),
		Collector: analyzer.NewCollector(),
		opts:      opts,
		specs:     opts.Flows,
		liveCfg:   opts.Design.Config,
		recovery:  make(map[int]*frer.Table),
		prog: progState{
			reserved: make(map[pq]ethernet.Rate),
			nextCBS:  make(map[bankKey]int),
			cbsID:    make(map[pq]int),
		},
	}

	if opts.EnableTrace {
		n.Tracer = &trace.Recorder{Limit: 1 << 20}
	}
	n.Flight = trace.NewFlight(flightCapacity)
	n.Health = &obs.Health{}
	if opts.Metrics != nil {
		n.Metrics = opts.Metrics
		opts.Metrics.Help("tsn_sim_events_total", "discrete events executed")
		opts.Metrics.Help("tsn_sim_heap_depth_high_water", "worst-case scheduler heap depth")
		engine.Instrument(
			opts.Metrics.Counter("tsn_sim_events_total"),
			opts.Metrics.Gauge("tsn_sim_heap_depth_high_water"),
		)
		n.Collector.Instrument(opts.Metrics)
		n.Attr = obs.NewAttribution(opts.Metrics, n.Flight)
		n.Collector.SetLatencySink(n.Attr)
	}

	// Access ports run at AccessRate when configured.
	accessPorts := make(map[topology.Attach]bool)
	if opts.AccessRate > 0 {
		for _, h := range opts.Topo.Hosts() {
			at, _ := opts.Topo.HostAttach(h)
			accessPorts[at] = true
		}
	}

	// Switches, one per topology node.
	for s := 0; s < opts.Topo.N; s++ {
		cfg := opts.Design.SwitchConfig(s, opts.Topo.PortCount(s))
		cfg.SharedBufferNum = opts.SharedBufferNum
		cfg.Metrics = opts.Metrics
		if opts.AccessRate > 0 {
			cfg.PortRates = make([]ethernet.Rate, cfg.Ports)
			for pt := 0; pt < cfg.Ports; pt++ {
				if accessPorts[topology.Attach{Switch: s, Port: pt}] {
					cfg.PortRates[pt] = opts.AccessRate
				}
			}
		}
		sw := tsnswitch.New(engine, cfg)
		sw.Tracer = n.Tracer
		sw.Flight = n.Flight
		n.Switches = append(n.Switches, sw)
	}

	// Trunk cables.
	for _, l := range opts.Topo.TrunkLinks() {
		netdev.Connect(
			n.Switches[l.A.Switch].Ifc(l.A.Port),
			n.Switches[l.B.Switch].Ifc(l.B.Port),
			opts.CableDelay,
		)
	}

	// End stations, optionally tapped into a pcap capture.
	var capture *pcap.Writer
	if opts.Pcap != nil {
		capture = pcap.NewWriter(opts.Pcap)
		n.Capture = capture
	}
	for _, h := range opts.Topo.Hosts() {
		at, _ := opts.Topo.HostAttach(h)
		nicRate := opts.Design.Config.LinkRate
		if opts.AccessRate > 0 {
			nicRate = opts.AccessRate
		}
		nic := tsnnic.New(engine, h, nicRate, n.Collector)
		netdev.Connect(nic.Ifc(), n.Switches[at.Switch].Ifc(at.Port), opts.CableDelay)
		if capture != nil {
			nic.Ifc().SetSniffer(func(f *ethernet.Frame, at sim.Time) {
				// Capture errors only surface through Capture.Count.
				_ = capture.WriteFrame(at, f)
			})
		}
		n.NICs[h] = nic
	}
	n.assignDeliverPrios()

	// gPTP domain over the trunks, grandmaster at switch 0.
	if opts.EnableGPTP {
		dom := gptp.NewDomain(engine, gptp.DefaultConfig())
		rng := sim.NewRand(opts.Seed ^ 0x74657374)
		nodes := make([]*gptp.Node, opts.Topo.N)
		for s := 0; s < opts.Topo.N; s++ {
			drift := clock.PPB(rng.Int63n(100_000) - 50_000)
			offset := sim.Time(rng.Int63n(int64(sim.Millisecond)))
			if s == 0 {
				drift, offset = 0, 0
			}
			nodes[s] = dom.AddNode(s, drift, offset)
			n.Switches[s].Clock = nodes[s].Clock
		}
		for _, l := range opts.Topo.TrunkLinks() {
			dom.Connect(nodes[l.A.Switch], nodes[l.B.Switch], opts.CableDelay)
		}
		dom.SetGrandmaster(nodes[0])
		if opts.Metrics != nil {
			dom.Instrument(opts.Metrics)
		}
		dom.Start()
		n.Domain = dom
	}

	if err := n.program(); err != nil {
		return nil, err
	}

	// Live-reconfiguration controller: always present, so fault
	// scenarios can arm mid-apply failures even before the first
	// Reconfigure call.
	n.Reconfig = reconfig.NewController(engine, opts.Metrics)

	// Invariant watchdog over every switch and recovery table.
	if opts.EnableWatchdog {
		interval := opts.WatchdogInterval
		if interval <= 0 {
			interval = sim.Millisecond
		}
		n.Watchdog = reconfig.NewWatchdog(engine, opts.Metrics, interval)
		for _, sw := range n.Switches {
			n.Watchdog.Watch(sw)
		}
		for _, tbl := range n.sortedRecovery() {
			n.Watchdog.WatchFRER(tbl)
		}
		// Publish watchdog state to the health board after every sweep;
		// a fresh degradation also snapshots the flight recorder so the
		// events that led into the pressure survive the ring.
		w := n.Watchdog
		wasDegraded := false
		w.OnAudit = func() {
			degraded := w.Degraded()
			n.Health.SetDegraded(degraded, w.LastDetail())
			n.Health.SetAudit(w.Audits(), w.TotalViolations())
			if degraded && !wasDegraded && n.Attr != nil {
				n.Attr.DumpNow("watchdog:degraded", engine.Now())
			}
			wasDegraded = degraded
		}
		n.Watchdog.Start()
	}

	// Fault scenario: resolve selectors against the built network and
	// schedule every fault (absolute sim time, from now = 0).
	if opts.Faults != nil {
		n.Injector = faults.NewInjector(engine, opts.Seed, opts.Metrics)
		if n.Attr != nil {
			n.Injector.OnInject = func(kind string) {
				n.Attr.DumpNow("fault:"+kind, engine.Now())
			}
		}
		if err := n.Injector.Apply(opts.Faults, n.faultBindings()); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// sortedRecovery lists the FRER recovery tables in listener-host order,
// the deterministic order used for watchdog audits and reconfiguration
// bindings.
func (n *Net) sortedRecovery() []*frer.Table {
	hosts := make([]int, 0, len(n.recovery))
	for h := range n.recovery {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	out := make([]*frer.Table, len(hosts))
	for i, h := range hosts {
		out[i] = n.recovery[h]
	}
	return out
}

// faultBindings maps fault-scenario selectors (switch pairs, hosts,
// switch IDs) to the live objects the injector manipulates.
func (n *Net) faultBindings() faults.Bindings {
	topo := n.opts.Topo
	return faults.Bindings{
		TrunkIfc: func(a, b int) (*netdev.Ifc, error) {
			if a < 0 || a >= len(n.Switches) || b < 0 || b >= len(n.Switches) {
				return nil, fmt.Errorf("testbed: no switch pair %d-%d", a, b)
			}
			p, ok := topo.PortToward(a, b)
			if !ok {
				return nil, fmt.Errorf("testbed: no trunk %d-%d", a, b)
			}
			return n.Switches[a].Ifc(p), nil
		},
		HostIfc: func(host int) (*netdev.Ifc, error) {
			nic, ok := n.NICs[host]
			if !ok {
				return nil, fmt.Errorf("testbed: no host %d", host)
			}
			return nic.Ifc(), nil
		},
		Switch: func(id int) (*tsnswitch.Switch, error) {
			if id < 0 || id >= len(n.Switches) {
				return nil, fmt.Errorf("testbed: no switch %d", id)
			}
			return n.Switches[id], nil
		},
		Domain: n.Domain,
		ArmReconfigFail: func(op int) error {
			n.Reconfig.ArmFailure(op)
			return nil
		},
		ArmReconfigTransient: func(op, times int) error {
			n.Reconfig.ArmTransient(op, times)
			return nil
		},
		ArmReconfigWedge: func(op int) error {
			n.Reconfig.ArmWedge(op)
			return nil
		},
	}
}

// program installs forwarding, classification, meter and CBS state for
// every flow, as the embedded CPU does at run-time in the prototype.
func (n *Net) program() error {
	// FRER sizing: the sequence-recovery table at each listener holds
	// every redundant stream the design provisioned (set_frer_tbl), or
	// at minimum every FRER flow in the workload.
	nFRER := 0
	for _, spec := range n.specs {
		if spec.FRER {
			nFRER++
		}
	}
	n.frerCap = n.liveCfg.FRERSize
	if n.frerCap < nFRER {
		n.frerCap = nFRER
	}
	n.frerHist = n.liveCfg.FRERHistory
	if n.frerHist <= 0 {
		n.frerHist = frer.DefaultHistory
	}

	changed, err := n.installFlows(n.specs)
	if err != nil {
		return err
	}
	return n.applyCBS(changed)
}

// installFlows programs forwarding, classification and meter state for
// specs, advancing the incremental programming cursor (n.prog) so the
// same function serves the initial build and flows added live. It
// returns the (switch, port, queue) cells whose RC bandwidth
// reservation changed and therefore need CBS (re)configuration. On
// error the tables may hold a partial install.
func (n *Net) installFlows(specs []*flows.Spec) ([]pq, error) {
	topo := n.opts.Topo
	rcQueues := rcQueueSet(n.liveCfg.QueueNum, n.liveCfg.CBSMapSize)
	changed := map[pq]bool{}

	for _, spec := range specs {
		idx := n.prog.flowIdx
		n.prog.flowIdx++
		if len(spec.Path) == 0 {
			return nil, fmt.Errorf("testbed: flow %d path not bound", spec.ID)
		}
		dstAt, ok := topo.HostAttach(spec.DstHost)
		if !ok {
			return nil, fmt.Errorf("testbed: flow %d destination host %d not attached", spec.ID, spec.DstHost)
		}
		// Queue assignment by class.
		var queueID int
		switch spec.Class {
		case ethernet.ClassTS:
			queueID = n.liveCfg.QueueNum - 1 // CQF pair member A
		case ethernet.ClassRC:
			queueID = rcQueues[idx%len(rcQueues)]
		default:
			queueID = 0
		}
		dstMAC := ethernet.HostMAC(spec.DstHost)

		// installPath programs forwarding and classification for one
		// member path under one VID. withMeter adds RC policing and CBS
		// bandwidth reservation — primary path only; FRER member streams
		// are TS and never metered.
		installPath := func(path []int, vid uint16, withMeter bool) error {
			for h, swID := range path {
				sw := n.Switches[swID]
				// Egress port: toward the next switch, or the host port.
				var outPort int
				if h+1 < len(path) {
					p, ok := topo.PortToward(swID, path[h+1])
					if !ok {
						return fmt.Errorf("testbed: flow %d: no trunk %d->%d", spec.ID, swID, path[h+1])
					}
					outPort = p
				} else {
					if dstAt.Switch != swID {
						return fmt.Errorf("testbed: flow %d path ends at %d but host is on %d",
							spec.ID, swID, dstAt.Switch)
					}
					outPort = dstAt.Port
				}
				if err := sw.Forward().Unicast.Add(dstMAC, vid, outPort); err != nil {
					return fmt.Errorf("testbed: flow %d switch %d: %w", spec.ID, swID, err)
				}
				entry := tables.ClassEntry{QueueID: queueID}
				if withMeter {
					entry.MeterID = n.prog.nextMeter
					entry.HasMeter = true
					// The meter must admit the flow's declared burst; the
					// CBS, not the policer, spreads it (802.1Qav).
					burst := 4 * spec.WireSize
					if b := 2 * spec.BurstFrames() * spec.WireSize; b > burst {
						burst = b
					}
					if err := sw.Filter().Meters.Configure(n.prog.nextMeter, spec.Rate+spec.Rate/10, burst); err != nil {
						return fmt.Errorf("testbed: flow %d meter: %w", spec.ID, err)
					}
					cell := pq{swID, outPort, queueID}
					n.prog.reserved[cell] += spec.Rate
					changed[cell] = true
				}
				key := tables.ClassKey{
					Src: ethernet.HostMAC(spec.SrcHost), Dst: dstMAC,
					VID: vid, PRI: spec.PCP,
				}
				if err := sw.Filter().Class.Add(key, entry); err != nil {
					return fmt.Errorf("testbed: flow %d switch %d: %w", spec.ID, swID, err)
				}
			}
			return nil
		}
		if err := installPath(spec.Path, spec.VID, spec.Class == ethernet.ClassRC); err != nil {
			return nil, err
		}
		if spec.FRER {
			if err := n.programFRER(spec, n.recovery, n.frerCap, n.frerHist, installPath); err != nil {
				return nil, err
			}
		}
		if spec.Class == ethernet.ClassRC {
			n.prog.nextMeter++
		}
		// The destination host's collector: in partitioned builds the
		// flow is received (and its stats kept) on the partition its
		// listener NIC lives in.
		coll := n.collectorFor(spec.DstHost)
		coll.RegisterFlow(spec.ID, spec.Class)
		if spec.Class == ethernet.ClassTS && spec.Deadline > 0 {
			coll.SetDeadline(spec.ID, spec.Deadline)
		}
	}

	// Deterministic cell order: CBS ids and metric registration must
	// not depend on map iteration (bit-identical reruns).
	cells := make([]pq, 0, len(changed))
	for cell := range changed {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		if a.port != b.port {
			return a.port < b.port
		}
		return a.q < b.q
	})
	return cells, nil
}

// applyCBS configures one credit-based shaper per touched RC cell with
// the cumulative reserved bandwidth + 25% headroom, capped below line
// rate. Cells already attached to a shaper get their idle slope
// re-programmed in place.
func (n *Net) applyCBS(cells []pq) error {
	if n.opts.DisableCBS {
		return nil
	}
	for _, cell := range cells {
		rate := n.prog.reserved[cell]
		sw := n.Switches[cell.sw]
		idle := rate + rate/4
		if idle >= n.liveCfg.LinkRate {
			idle = n.liveCfg.LinkRate - 1
		}
		bank := sw.Bank(cell.port)
		id, attached := n.prog.cbsID[cell]
		if !attached {
			bk := bankKey{cell.sw, cell.port}
			id = n.prog.nextCBS[bk]
			n.prog.nextCBS[bk] = id + 1
			if err := bank.Attach(cell.q, id); err != nil {
				return fmt.Errorf("testbed: cbs attach sw%d p%d q%d: %w", cell.sw, cell.port, cell.q, err)
			}
			n.prog.cbsID[cell] = id
		}
		if err := bank.Configure(id, idle, n.liveCfg.LinkRate); err != nil {
			return fmt.Errorf("testbed: cbs configure: %w", err)
		}
		if reg := n.regFor(cell.sw); !attached && reg != nil {
			reg.Help(cbsStallsName, cbsStallsHelp)
			bank.For(cell.q).Instrument(reg.Counter(cbsStallsName,
				metrics.L("switch", strconv.Itoa(cell.sw)),
				metrics.L("port", strconv.Itoa(cell.port)),
				metrics.L("queue", strconv.Itoa(cell.q)),
			))
		}
	}
	return nil
}

// programFRER wires one 802.1CB redundant flow: the member stream's
// forwarding/classification entries along the disjoint alternate path
// (same destination MAC, alternate VID), talker-side replication at the
// source NIC, and listener-side sequence recovery at the destination
// NIC. installPath is the per-path programmer from program().
func (n *Net) programFRER(spec *flows.Spec, recovery map[int]*frer.Table,
	capacity, history int, installPath func(path []int, vid uint16, withMeter bool) error) error {
	if len(spec.AltPath) == 0 {
		return fmt.Errorf("testbed: FRER flow %d alternate path not bound", spec.ID)
	}
	if err := installPath(spec.AltPath, spec.AltVID, false); err != nil {
		return err
	}
	src, ok := n.NICs[spec.SrcHost]
	if !ok {
		return fmt.Errorf("testbed: FRER flow %d source host %d has no NIC", spec.ID, spec.SrcHost)
	}
	src.SetReplication(spec.ID, spec.AltVID)

	dst, ok := n.NICs[spec.DstHost]
	if !ok {
		return fmt.Errorf("testbed: FRER flow %d destination host %d has no NIC", spec.ID, spec.DstHost)
	}
	tbl := recovery[spec.DstHost]
	if tbl == nil {
		tbl = frer.NewTable(capacity, history)
		if n.Metrics != nil {
			n.Metrics.Help(frer.MetricPassed, "frames passed by 802.1CB sequence recovery")
			n.Metrics.Help(frer.MetricEliminated, "duplicate member-stream frames eliminated")
			n.Metrics.Help(frer.MetricRogue, "out-of-window frames discarded as rogue")
			l := metrics.L("host", strconv.Itoa(spec.DstHost))
			tbl.Instrument(
				n.Metrics.Counter(frer.MetricPassed, l),
				n.Metrics.Counter(frer.MetricEliminated, l),
				n.Metrics.Counter(frer.MetricRogue, l),
			)
		}
		recovery[spec.DstHost] = tbl
		dst.SetRecovery(tbl)
	}
	if err := tbl.Register(spec.ID); err != nil {
		return fmt.Errorf("testbed: FRER flow %d: %w", spec.ID, err)
	}
	return nil
}

// rcQueueSet returns the queue indices reserved for RC traffic: the
// ones just below the CQF pair (e.g. 5,4,3 with 8 queues and 3 RC
// queues).
func rcQueueSet(queueNum, rcCount int) []int {
	if rcCount <= 0 {
		return []int{queueNum - 3}
	}
	out := make([]int, 0, rcCount)
	for q := queueNum - 3; q > queueNum-3-rcCount && q > 0; q-- {
		out = append(out, q)
	}
	return out
}

// InstallTAS replaces the default CQF gate configuration with a
// synthesized 802.1Qbv schedule: every port with reserved windows gets
// the compiled in/out gate lists; ports without TS windows keep their
// gates fully open. The design's gate table size must accommodate the
// schedule (set Config.GateSize ≥ Schedule.MaxGateEntries before
// building), and Run's warmup must be a multiple of the schedule cycle
// so injection offsets stay phase-aligned with the gate lists.
func (n *Net) InstallTAS(sch *tas.Schedule) error {
	qa := n.opts.Design.Config.QueueNum - 1
	qb := n.opts.Design.Config.QueueNum - 2
	for s, sw := range n.Switches {
		for p := 0; p < n.opts.Topo.PortCount(s); p++ {
			pk := tas.PortKey{Switch: s, Port: p}
			if len(sch.Windows[pk]) == 0 {
				open := gate.NewVarGCL([]gate.VarEntry{{Mask: gate.AllOpen, Duration: sch.Cycle}})
				if err := sw.SetPortSchedules(p, open, open); err != nil {
					return err
				}
				continue
			}
			in, out, err := sch.GCLs(pk, qa, qb)
			if err != nil {
				return err
			}
			if err := sw.SetPortSchedules(p, in, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes the scenario: gPTP (if enabled) converges during warmup,
// flows generate for duration, then the network drains. Flow generation
// begins at warmup and stops at warmup+duration.
func (n *Net) Run(warmup, duration sim.Time) {
	if n.parts != nil {
		n.runPartitioned(warmup, duration)
		return
	}
	start := n.Engine.Now() + warmup
	stop := start + duration
	n.flowStop = stop
	for _, spec := range n.specs {
		nic, ok := n.NICs[spec.SrcHost]
		if !ok {
			panic(fmt.Sprintf("testbed: flow %d source host %d has no NIC", spec.ID, spec.SrcHost))
		}
		nic.SetStopTime(stop)
		spec := spec
		n.Engine.At(start, fmt.Sprintf("start-flow%d", spec.ID), func(*sim.Engine) {
			nic.StartFlow(spec)
		})
	}
	// Drain: two slots plus cable time covers any in-flight CQF frame.
	drain := 4*n.opts.Design.Config.SlotSize + sim.Millisecond
	n.Engine.RunUntil(stop + drain)
}

// telemetryPublishInterval is the simulated-time cadence at which the
// telemetry server's registry snapshot refreshes during a run.
const telemetryPublishInterval = 10 * sim.Millisecond

// NewTelemetryServer builds the live telemetry server over this
// network's attribution, flight recorder and health board, and arms a
// periodic engine event republishing the registry snapshot — the HTTP
// goroutines only ever read published copies, never the hot-path cells.
// Use Serve to also bind a TCP listener.
func (n *Net) NewTelemetryServer() *obs.Server {
	srv := obs.NewServer(n.Attr, n.Flight, n.Health)
	if n.Metrics != nil {
		srv.Publish(n.Metrics.Snapshot())
		var tick func(e *sim.Engine)
		tick = func(e *sim.Engine) {
			srv.Publish(n.Metrics.Snapshot())
			e.After(telemetryPublishInterval, "obs:publish", tick)
		}
		n.Engine.After(telemetryPublishInterval, "obs:publish", tick)
	}
	return srv
}

// Serve starts the live telemetry HTTP server on addr (e.g. ":9090",
// or ":0" for an ephemeral port) and returns the server plus the bound
// address. The server (also stored in n.Server) owns its listener
// goroutine and drains gracefully via srv.Shutdown; snapshots refresh
// every telemetryPublishInterval of simulated time while the engine
// runs (call srv.Publish once more after the run for the final state).
func (n *Net) Serve(addr string) (*obs.Server, string, error) {
	srv := n.NewTelemetryServer()
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	n.Server = srv
	return srv, ln.Addr().String(), nil
}

// LiveConfig returns the configuration currently in force: the design's
// at build time, then the committed candidate after each successful
// reconfiguration. A rolled-back transaction leaves it unchanged.
func (n *Net) LiveConfig() core.Config { return n.liveCfg }

// VerifyLive checks that every switch's resizable resources match the
// configuration the controller believes is in force (LiveConfig). This
// is the reconfiguration-atomicity postcondition the chaos oracle
// leans on: after a committed transaction the switches must carry the
// candidate, after a rollback the pre-transaction configuration, and
// any mismatch means a commit died partway and left partial state.
func (n *Net) VerifyLive() error {
	want := n.liveCfg
	for s, sw := range n.Switches {
		got := sw.Config()
		checks := []struct {
			field    string
			got, exp int64
		}{
			{"unicast_size", int64(got.UnicastSize), int64(want.UnicastSize)},
			{"multicast_size", int64(got.MulticastSize), int64(want.MulticastSize)},
			{"class_size", int64(got.ClassSize), int64(want.ClassSize)},
			{"meter_size", int64(got.MeterSize), int64(want.MeterSize)},
			{"gate_size", int64(got.GateSize), int64(want.GateSize)},
			{"cbs_map_size", int64(got.CBSMapSize), int64(want.CBSMapSize)},
			{"cbs_size", int64(got.CBSSize), int64(want.CBSSize)},
			{"queue_depth", int64(got.QueueDepth), int64(want.QueueDepth)},
			{"buffer_num", int64(got.BuffersPerPort), int64(want.BufferNum)},
			{"slot_us", int64(got.SlotSize), int64(want.SlotSize)},
		}
		for _, c := range checks {
			if c.got != c.exp {
				return fmt.Errorf("testbed: switch %d %s = %d, expected %d: partial reconfiguration left in place",
					s, c.field, c.got, c.exp)
			}
		}
	}
	return nil
}

// reconfigBindings connects the reconfiguration engine to the live
// resources it validates against and operates on.
func (n *Net) reconfigBindings() reconfig.Bindings {
	return reconfig.Bindings{
		Switches: n.Switches,
		FRER:     n.sortedRecovery(),
		Platform: n.opts.Design.Platform,
	}
}

// Reconfigure begins a transactional live reconfiguration to cfg:
// validate against the running state, stage per-resource operations,
// and schedule the atomic commit for the next CQF cycle boundary. An
// inapplicable candidate is rejected here, before anything is touched.
// The returned transaction resolves (committed or rolled back) at its
// CommitTime; inspect State and Err after the engine passes it.
func (n *Net) Reconfigure(cfg core.Config) (*reconfig.Txn, error) {
	if n.parts != nil {
		return nil, fmt.Errorf("testbed: live reconfiguration is not supported in partitioned runs (a commit would touch switches across partition goroutines)")
	}
	txn, err := n.Reconfig.Begin(n.liveCfg, cfg, n.reconfigBindings())
	if err != nil {
		return nil, err
	}
	txn.OnResolve(func(t *reconfig.Txn) {
		if t.State() == reconfig.StateCommitted {
			n.liveCfg = cfg
		}
	})
	txn.CommitAtBoundary()
	return txn, nil
}

// AddFlows programs additional non-FRER flows into the running network
// and schedules their generators to start at the absolute instant
// start. Call it after Run has begun (typically from an engine event,
// e.g. once a reconfiguration that grew the tables has committed); the
// new flows stop with the rest of the workload. On a programming error
// the tables may hold a partial install.
func (n *Net) AddFlows(specs []*flows.Spec, start sim.Time) error {
	if n.parts != nil {
		return fmt.Errorf("testbed: AddFlows is not supported in partitioned runs (table programming would race the partition workers)")
	}
	for _, spec := range specs {
		if spec.FRER {
			return fmt.Errorf("testbed: flow %d: FRER flows cannot be added live", spec.ID)
		}
		if _, ok := n.NICs[spec.SrcHost]; !ok {
			return fmt.Errorf("testbed: flow %d source host %d has no NIC", spec.ID, spec.SrcHost)
		}
	}
	changed, err := n.installFlows(specs)
	if err != nil {
		return err
	}
	if err := n.applyCBS(changed); err != nil {
		return err
	}
	n.specs = append(n.specs, specs...)
	for _, spec := range specs {
		spec := spec
		nic := n.NICs[spec.SrcHost]
		n.Engine.At(start, fmt.Sprintf("start-flow%d", spec.ID), func(*sim.Engine) {
			nic.SetStopTime(n.flowStop)
			nic.StartFlow(spec)
		})
	}
	return nil
}

// SentCounts merges per-flow transmit counts across all NICs.
func (n *Net) SentCounts() map[uint32]uint64 {
	out := make(map[uint32]uint64)
	for _, nic := range n.NICs {
		for id, c := range nic.Sent() {
			out[id] += c
		}
	}
	return out
}

// Summary aggregates receive-side statistics for one traffic class.
func (n *Net) Summary(cls ethernet.Class) analyzer.Summary {
	return n.Collector.Summarize(cls, n.SentCounts())
}

// SwitchStats sums dataplane counters across all switches.
func (n *Net) SwitchStats() tsnswitch.Stats {
	var total tsnswitch.Stats
	for _, sw := range n.Switches {
		st := sw.Stats()
		total.RxFrames += st.RxFrames
		total.TxFrames += st.TxFrames
		for i := range st.Drops {
			total.Drops[i] += st.Drops[i]
		}
	}
	return total
}

// CheckBufferLeaks verifies that every switch's buffer pools drained
// back to empty — each allocated slot was freed exactly once. Call it
// after Run (the drain window lets in-flight frames complete); a
// non-nil error indicates a descriptor/pool leak in the dataplane.
func (n *Net) CheckBufferLeaks() error {
	for s, sw := range n.Switches {
		for p := 0; p < n.opts.Topo.PortCount(s); p++ {
			if inUse := sw.Port(p).Pool().InUse(); inUse != 0 {
				return fmt.Errorf("testbed: switch %d port %d leaked %d buffers", s, p, inUse)
			}
		}
	}
	return nil
}

// MaxQueueHighWater returns the worst TS-queue occupancy observed
// anywhere, the empirical check of the ITP dimensioning.
func (n *Net) MaxQueueHighWater() int {
	worst := 0
	qa := n.opts.Design.Config.QueueNum - 1
	qb := n.opts.Design.Config.QueueNum - 2
	for s, sw := range n.Switches {
		for p := 0; p < n.opts.Topo.PortCount(s); p++ {
			for _, q := range []int{qa, qb} {
				if hw := sw.QueueHighWater(p, q); hw > worst {
					worst = hw
				}
			}
		}
	}
	return worst
}
