package testbed

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// obsScenario builds an instrumented 6-switch ring whose TS flows carry
// an impossibly tight deadline, so every delivery is a miss and the
// attribution layer exercises its dump path.
func obsScenario(t *testing.T, deadline sim.Time) (*Net, []*flows.Spec, *metrics.Registry) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
		topo.AttachHost(200+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count:    24,
		Period:   10 * sim.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	specs = append(specs, flows.Background(50_000, ethernet.ClassRC,
		200, 102, 3000, 50*ethernet.Mbps))
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	if deadline > 0 {
		for _, s := range specs {
			if s.Class == ethernet.ClassTS {
				s.Deadline = deadline
			}
		}
	}
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, err := Build(Options{
		Design:  design,
		Topo:    topo,
		Flows:   specs,
		Seed:    5,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, specs, reg
}

// TestAttributionExactSum is the acceptance check of the attribution
// books: for every flow, the worst delivery's five components sum to
// the analyzer's measured end-to-end latency exactly, and per-flow
// deadline misses agree between the collector and the attribution
// aggregate.
func TestAttributionExactSum(t *testing.T) {
	net, specs, reg := obsScenario(t, sim.Microsecond)
	net.Run(0, 40*sim.Millisecond)

	if net.Attr == nil {
		t.Fatal("metrics are on but Attr is nil")
	}
	all := net.Attr.Flows()
	if len(all) == 0 {
		t.Fatal("no flows aggregated")
	}
	misses := uint64(0)
	for _, fl := range all {
		if fl.Count == 0 {
			continue
		}
		if got := fl.Worst.Total(); got != fl.WorstLat {
			t.Fatalf("flow %d: worst components sum to %v, e2e latency %v — books out of balance",
				fl.FlowID, got, fl.WorstLat)
		}
		st := net.Collector.Flow(fl.FlowID)
		if st == nil {
			t.Fatalf("flow %d aggregated but unknown to collector", fl.FlowID)
		}
		if st.MaxLat != fl.WorstLat {
			t.Fatalf("flow %d: collector max %v != attributed worst %v", fl.FlowID, st.MaxLat, fl.WorstLat)
		}
		if st.DeadlineMisses != fl.Misses {
			t.Fatalf("flow %d: collector misses %d != attributed %d", fl.FlowID, st.DeadlineMisses, fl.Misses)
		}
		misses += fl.Misses
	}
	if misses == 0 {
		t.Fatal("1µs TS deadline produced no misses — the forcing scenario is broken")
	}

	// The worst miss left a flight-recorder capture of its flow's chain.
	dumps := net.Attr.Dumps()
	if len(dumps) == 0 {
		t.Fatal("deadline misses left no flight-recorder dump")
	}
	worst := dumps[len(dumps)-1]
	if len(worst.Events) == 0 {
		t.Fatal("worst-miss dump holds no events")
	}
	for _, ev := range worst.Events {
		if ev.FlowID != worst.FlowID {
			t.Fatalf("dump leaked foreign flow %d into flow %d's chain", ev.FlowID, worst.FlowID)
		}
	}
	if worst.Comp.Total() != worst.Lat {
		t.Fatalf("dump components %v != latency %v", worst.Comp.Total(), worst.Lat)
	}

	// Component histograms landed in the registry with per-class labels.
	snap := reg.Snapshot()
	found := false
	for _, fam := range snap.Families {
		if fam.Name == "tsn_latency_component_ns" && len(fam.Samples) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("component histogram family missing from registry")
	}
	_ = specs
}

// TestTelemetryServerLiveUnderRace runs the simulation while HTTP
// clients hammer every endpoint from their own goroutines — the race
// detector (CI runs this under -race) proves the snapshot-publishing
// design keeps the unsynchronized hot path isolated from the server.
func TestTelemetryServerLiveUnderRace(t *testing.T) {
	net, _, reg := obsScenario(t, sim.Microsecond)
	srv, addr, err := net.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz", "/flows", "/flightrec"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	net.Run(0, 30*sim.Millisecond)
	srv.Publish(reg.Snapshot())
	close(stop)
	wg.Wait()

	// Final state: a flow breakdown is served and its components sum
	// exactly to the reported worst latency.
	top := net.Attr.TopByWorst(1)
	if len(top) == 0 {
		t.Fatal("no flows to query")
	}
	resp, err := http.Get(fmt.Sprintf("%s/flows/%d", base, top[0].FlowID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/flows/%d = %d", top[0].FlowID, resp.StatusCode)
	}
	var fj struct {
		Count uint64 `json:"count"`
		Worst struct {
			Prop  sim.Time `json:"prop_ns"`
			Ser   sim.Time `json:"ser_ns"`
			Queue sim.Time `json:"queue_ns"`
			Gate  sim.Time `json:"gate_ns"`
			Shape sim.Time `json:"shape_ns"`
		} `json:"worst"`
		WorstNs sim.Time `json:"worst_ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fj); err != nil {
		t.Fatal(err)
	}
	if fj.Count == 0 {
		t.Fatal("served breakdown is empty")
	}
	sum := fj.Worst.Prop + fj.Worst.Ser + fj.Worst.Queue + fj.Worst.Gate + fj.Worst.Shape
	if sum != fj.WorstNs {
		t.Fatalf("served components sum to %v, worst_ns %v", sum, fj.WorstNs)
	}
}

// TestFlightRecorderAlwaysOn checks the recorder runs without opt-in
// flags and retains recent dataplane events.
func TestFlightRecorderAlwaysOn(t *testing.T) {
	net, _, _ := obsScenario(t, 0)
	if net.Flight == nil {
		t.Fatal("flight recorder not built")
	}
	net.Run(0, 20*sim.Millisecond)
	if net.Flight.Seq() == 0 {
		t.Fatal("flight recorder saw no events")
	}
	if net.Tracer != nil {
		t.Fatal("full tracer should stay opt-in")
	}
}
