package testbed

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// ringScenario builds a 6-switch ring with one host per switch and
// nTS planned TS flows of hop length hops.
func ringScenario(t *testing.T, nTS, hops int, withGPTP bool) (*Net, []*flows.Spec) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count:    nTS,
		Period:   10 * sim.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+hops)%6
		},
		Seed: 11,
	})
	// Distinct VIDs keep per-flow classification entries distinct.
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{
		Design:     design,
		Topo:       topo,
		Flows:      specs,
		EnableGPTP: withGPTP,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, specs
}

func TestRingZeroLossWithinBounds(t *testing.T) {
	net, _ := ringScenario(t, 120, 3, false)
	net.Run(0, 100*sim.Millisecond)
	ts := net.Summary(ethernet.ClassTS)
	if ts.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if ts.Lost != 0 {
		t.Fatalf("TS loss = %d of %d (drops %+v)", ts.Lost, ts.Sent, net.SwitchStats().Drops)
	}
	// Eq. (1): hops=3 (the path crosses 4 switches? path = src..dst
	// inclusive = hops+1 switches... here hop count = 3 switch-to-
	// switch transitions + src switch = 4 switches). The CQF bound in
	// slot units: latency ≤ (len(path)+1)·slot.
	slot := 65 * sim.Microsecond
	if ts.MaxLat > 5*slot {
		t.Fatalf("TS max latency %v exceeds CQF bound", ts.MaxLat)
	}
	if ts.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", ts.DeadlineMisses)
	}
}

func TestRingLatencyGrowsWithHops(t *testing.T) {
	mean := func(hops int) sim.Time {
		net, _ := ringScenario(t, 60, hops, false)
		net.Run(0, 100*sim.Millisecond)
		s := net.Summary(ethernet.ClassTS)
		if s.Lost != 0 {
			t.Fatalf("hops=%d lost %d", hops, s.Lost)
		}
		return s.MeanLatency
	}
	m1, m3 := mean(1), mean(3)
	if m3 <= m1 {
		t.Fatalf("latency did not grow with hops: %v vs %v", m1, m3)
	}
	// Roughly ∝ path length (2 vs 4 switches): ratio in [1.5, 3].
	ratio := float64(m3) / float64(m1)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("hop scaling ratio = %.2f", ratio)
	}
}

func TestRingWithGPTPMatchesPerfectClocks(t *testing.T) {
	run := func(gptpOn bool) sim.Time {
		net, _ := ringScenario(t, 60, 2, gptpOn)
		warmup := sim.Time(0)
		if gptpOn {
			warmup = 2 * sim.Second // let the servo converge
		}
		net.Run(warmup, 50*sim.Millisecond)
		s := net.Summary(ethernet.ClassTS)
		if s.Lost != 0 {
			t.Fatalf("gptp=%v lost %d", gptpOn, s.Lost)
		}
		return s.MeanLatency
	}
	perfect, synced := run(false), run(true)
	// Sub-50 ns clock error is invisible at 65 µs slots: means must
	// agree within one slot.
	diff := perfect - synced
	if diff < 0 {
		diff = -diff
	}
	if diff > 65*sim.Microsecond {
		t.Fatalf("gPTP changed mean latency: %v vs %v", perfect, synced)
	}
}

func TestQueueHighWaterWithinDepth(t *testing.T) {
	net, specs := ringScenario(t, 200, 4, false)
	net.Run(0, 100*sim.Millisecond)
	depth := net.opts.Design.Config.QueueDepth
	if hw := net.MaxQueueHighWater(); hw > depth {
		t.Fatalf("queue high water %d exceeded provisioned depth %d", hw, depth)
	}
	// ITP plan promised occupancy ≤ depth.
	occ, err := itp.Occupancy(specs, 65*sim.Microsecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if occ > depth {
		t.Fatalf("planned occupancy %d exceeds depth %d", occ, depth)
	}
}

func TestBackgroundDoesNotDisturbTS(t *testing.T) {
	// The Fig. 2 / Fig. 7(d) shape: adding RC+BE background leaves TS
	// latency and jitter unchanged and loss zero.
	build := func(bg bool) (*Net, []*flows.Spec) {
		topo := topology.Ring(6)
		for h := 0; h < 6; h++ {
			topo.AttachHost(100+h, h)
		}
		specs := flows.GenerateTS(flows.TSParams{
			Count: 60, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
			Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
			Seed:  11,
		})
		for i, s := range specs {
			s.VID = uint16(1 + i)
		}
		if bg {
			id := uint32(5000)
			for src := 0; src < 3; src++ {
				rc := flows.Background(id, ethernet.ClassRC, 100+src, 100+(src+2)%6, uint16(3000+src), 150*ethernet.Mbps)
				id++
				be := flows.Background(id, ethernet.ClassBE, 100+src, 100+(src+2)%6, uint16(3100+src), 150*ethernet.Mbps)
				id++
				specs = append(specs, rc, be)
			}
		}
		if err := core.BindPaths(topo, specs); err != nil {
			t.Fatal(err)
		}
		der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			t.Fatal(err)
		}
		der.Plan.Apply(specs)
		design, err := core.BuilderFor(der.Config, nil).Build()
		if err != nil {
			t.Fatal(err)
		}
		net, err := Build(Options{Design: design, Topo: topo, Flows: specs})
		if err != nil {
			t.Fatal(err)
		}
		return net, specs
	}
	quiet, _ := build(false)
	quiet.Run(0, 100*sim.Millisecond)
	loaded, _ := build(true)
	loaded.Run(0, 100*sim.Millisecond)

	q, l := quiet.Summary(ethernet.ClassTS), loaded.Summary(ethernet.ClassTS)
	if q.Lost != 0 || l.Lost != 0 {
		t.Fatalf("TS loss: quiet %d loaded %d", q.Lost, l.Lost)
	}
	diff := q.MeanLatency - l.MeanLatency
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*sim.Microsecond {
		t.Fatalf("background shifted TS latency: %v vs %v", q.MeanLatency, l.MeanLatency)
	}
	// BE traffic must actually have flowed.
	be := loaded.Summary(ethernet.ClassBE)
	if be.Received == 0 {
		t.Fatal("background BE never arrived")
	}
}

func TestStarTopologyEndToEnd(t *testing.T) {
	topo := topology.Star(3)
	for h := 1; h <= 3; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 90, Period: 10 * sim.Millisecond, WireSize: 128, VID: 1,
		Hosts: func(i int) (int, int) { return 101 + i%3, 101 + (i+1)%3 },
		Seed:  9,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if design.Config.PortNum != 3 {
		t.Fatalf("star PortNum = %d", design.Config.PortNum)
	}
	net, err := Build(Options{Design: design, Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(0, 100*sim.Millisecond)
	s := net.Summary(ethernet.ClassTS)
	if s.Lost != 0 || s.Received == 0 {
		t.Fatalf("star summary = %+v (drops %+v)", s, net.SwitchStats().Drops)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	topo := topology.Ring(3)
	topo.AttachHost(100, 0)
	design, _ := core.BuilderFor(core.PaperCustomizedConfig(1), nil).Build()
	spec := &flows.Spec{ID: 1, Class: ethernet.ClassTS, WireSize: 64,
		Period: sim.Millisecond, SrcHost: 100, DstHost: 100}
	// Path not bound.
	if _, err := Build(Options{Design: design, Topo: topo, Flows: []*flows.Spec{spec}}); err == nil {
		t.Error("unbound path accepted")
	}
}

func TestNoReorderingInDataplane(t *testing.T) {
	// A single-path TSN dataplane must deliver every flow in order —
	// the analyzer's sequence tracker verifies it network-wide.
	net, _ := ringScenario(t, 200, 4, false)
	net.Run(0, 100*sim.Millisecond)
	for _, st := range net.Collector.Flows() {
		if st.Reordered != 0 {
			t.Fatalf("flow %d reordered %d frames", st.FlowID, st.Reordered)
		}
		if st.SeqGaps != 0 {
			t.Fatalf("flow %d has %d sequence gaps without loss", st.FlowID, st.SeqGaps)
		}
	}
}

func TestNoBufferLeaks(t *testing.T) {
	// After traffic stops and the drain window passes, every buffer
	// must be back in its pool — across CQF, background traffic and
	// meter/queue drops.
	net, _ := ringScenario(t, 150, 3, false)
	net.Run(0, 100*sim.Millisecond)
	if err := net.CheckBufferLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeTopologyEndToEnd(t *testing.T) {
	// Two spines with two leaves each; control loops between leaves of
	// different spines cross four trunks.
	// Tree(2,2): root 0; spine 1 with leaves 2,3; spine 4 with leaves 5,6.
	topo := topology.Tree(2, 2)
	leaves := []int{2, 3, 5, 6}
	for i, leaf := range leaves {
		topo.AttachHost(100+i, leaf)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 64, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%4, 100 + (i+2)%4 },
		Seed:  17,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if design.Config.PortNum != 3 { // spine: 2 downlinks + 1 uplink
		t.Fatalf("tree PortNum = %d", design.Config.PortNum)
	}
	net, err := Build(Options{Design: design, Topo: topo, Flows: specs, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(0, 100*sim.Millisecond)
	s := net.Summary(ethernet.ClassTS)
	if s.Lost != 0 || s.Received == 0 {
		t.Fatalf("tree summary = %+v (drops %+v)", s, net.SwitchStats().Drops)
	}
	// Cross-spine paths traverse 5 switches: latency ≈ 5 slots mean.
	if s.MaxLat > 6*65*sim.Microsecond {
		t.Fatalf("tree max latency %v", s.MaxLat)
	}
	if err := net.CheckBufferLeaks(); err != nil {
		t.Fatal(err)
	}
}
