package testbed_test

import (
	"fmt"

	"github.com/tsnbuilder/tsnbuilder/testbed"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

// Example runs a miniature ring network end to end: derive a design,
// build the testbed, inject TS flows and read the analyzer. The
// simulation is deterministic, so the measured numbers are exact.
func Example() {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count:    60,
		Period:   10 * tsnbuilder.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts:    func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:     1,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		fmt.Println(err)
		return
	}
	der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		fmt.Println(err)
		return
	}
	der.Plan.Apply(specs)
	design, err := tsnbuilder.BuilderFor(der.Config, nil).Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	net, err := testbed.Build(testbed.Options{Design: design, Topo: topo, Flows: specs})
	if err != nil {
		fmt.Println(err)
		return
	}
	net.Run(0, 50*tsnbuilder.Millisecond)
	s := net.Summary(tsnbuilder.ClassTS)
	fmt.Printf("sent %d, lost %d, mean %.1fµs, jitter %.2fµs\n",
		s.Sent, s.Lost, s.MeanLatency.Micros(), s.Jitter.Micros())
	// Output:
	// sent 300, lost 0, mean 163.6µs, jitter 18.87µs
}
