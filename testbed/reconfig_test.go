package testbed

// Integration tests for transactional live reconfiguration: a running
// ring network under active TS traffic is grown, shrunk, rejected,
// fault-injected and audited while frames are in flight.

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// liveRing builds the 6-switch ring used by the reconfiguration tests:
// nTS planned TS flows (hop length 2), optional BE background, and the
// extra Options the live-reconfiguration scenarios need.
func liveRing(t *testing.T, nTS int, withBE bool, opts Options) (*Net, []*flows.Spec, *topology.Topology) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: nTS, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:  11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	if withBE {
		id := uint32(5000)
		for src := 0; src < 3; src++ {
			specs = append(specs, flows.Background(id, ethernet.ClassBE,
				100+src, 100+(src+2)%6, uint16(3100+src), 100*ethernet.Mbps))
			id++
		}
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	opts.Design = design
	opts.Topo = topo
	opts.Flows = specs
	opts.Seed = 5
	net, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return net, specs, topo
}

// grownConfig is the mid-run candidate: every mutable table doubled,
// queues deepened, buffers widened. Structural fields stay put so the
// transaction is applicable live.
func grownConfig(cfg core.Config) core.Config {
	cfg.UnicastSize *= 2
	cfg.ClassSize *= 2
	cfg.MeterSize *= 2
	cfg.QueueDepth *= 2
	cfg.BufferNum *= 2
	return cfg
}

// TestLiveReconfigZeroTSLossDeterministic is the headline acceptance
// scenario: a transaction begun under active TS traffic commits at a
// CQF cycle boundary with zero TS loss, and two same-seed runs produce
// byte-identical metrics exports.
func TestLiveReconfigZeroTSLossDeterministic(t *testing.T) {
	run := func() (committed bool, lost uint64, export string) {
		reg := metrics.New()
		net, _, _ := liveRing(t, 60, false, Options{Metrics: reg})
		pre := net.LiveConfig()
		var txn *reconfig.Txn
		net.Engine.At(40*sim.Millisecond, "grow", func(*sim.Engine) {
			var err error
			txn, err = net.Reconfigure(grownConfig(pre))
			if err != nil {
				t.Fatalf("reconfigure: %v", err)
			}
		})
		net.Run(0, 100*sim.Millisecond)

		if txn == nil {
			t.Fatal("reconfigure event never ran")
		}
		cycle := 2 * pre.SlotSize
		if txn.CommitTime() <= 40*sim.Millisecond || txn.CommitTime()%cycle != 0 {
			t.Fatalf("commit at %v, not a cycle boundary after begin", txn.CommitTime())
		}
		var buf bytes.Buffer
		net.Metrics.Snapshot().WritePrometheus(&buf)
		if got := reg.CounterValue(reconfig.MetricTxns, metrics.L("outcome", "committed")); got != 1 {
			t.Fatalf("committed counter = %d", got)
		}
		return txn.State() == reconfig.StateCommitted, net.Summary(ethernet.ClassTS).Lost, buf.String()
	}

	c1, lost1, export1 := run()
	if !c1 {
		t.Fatal("transaction did not commit")
	}
	if lost1 != 0 {
		t.Fatalf("TS loss across live reconfiguration: %d", lost1)
	}
	c2, lost2, export2 := run()
	if !c2 || lost2 != 0 {
		t.Fatalf("second run: committed=%v lost=%d", c2, lost2)
	}
	if export1 != export2 {
		t.Fatal("same-seed runs diverged: metrics exports differ")
	}
}

// TestLiveReconfigAddFlowsDoubles reproduces the paper's rapid-
// customization pitch end to end: derive for 2× the flows, commit the
// grown configuration mid-run, then stream the second batch of flows
// into the running network — all with zero TS loss.
func TestLiveReconfigAddFlowsDoubles(t *testing.T) {
	net, specs, topo := liveRing(t, 60, false, Options{})
	pre := net.LiveConfig()

	// Derive the doubled scenario up front: its config is the reconfig
	// candidate and its ITP plan carries offsets for the new flows.
	extra := flows.GenerateTS(flows.TSParams{
		Count: 60, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + (i+3)%6, 100 + (i+5)%6 },
		Seed:  13,
	})
	for i, s := range extra {
		s.ID = uint32(1000 + i)
		s.VID = uint16(2000 + i)
	}
	if err := core.BindPaths(topo, extra); err != nil {
		t.Fatal(err)
	}
	all := append(append([]*flows.Spec{}, specs...), extra...)
	der2, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: all})
	if err != nil {
		t.Fatal(err)
	}
	der2.Plan.Apply(extra) // originals keep their live offsets
	cand := der2.Config
	if cand.QueueNum != pre.QueueNum || cand.PortNum != pre.PortNum {
		t.Fatalf("doubled derivation changed structure: %v", core.DiffConfigs(pre, cand))
	}

	var txn *reconfig.Txn
	net.Engine.At(20*sim.Millisecond, "grow", func(*sim.Engine) {
		txn, err = net.Reconfigure(cand)
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
	})
	net.Engine.At(40*sim.Millisecond, "add-flows", func(*sim.Engine) {
		if txn.State() != reconfig.StateCommitted {
			t.Fatalf("grow not committed before add: %v (%v)", txn.State(), txn.Err())
		}
		if err := net.AddFlows(extra, 45*sim.Millisecond); err != nil {
			t.Fatalf("add flows: %v", err)
		}
	})
	net.Run(0, 120*sim.Millisecond)

	sent := net.SentCounts()
	for _, s := range extra {
		if sent[s.ID] == 0 {
			t.Fatalf("added flow %d never transmitted", s.ID)
		}
	}
	ts := net.Summary(ethernet.ClassTS)
	if ts.Lost != 0 {
		t.Fatalf("TS loss after doubling flows live: %d of %d", ts.Lost, ts.Sent)
	}
	if got := net.LiveConfig(); got != cand {
		t.Fatalf("live config not the committed candidate:\n%v", core.DiffConfigs(cand, got))
	}
}

// TestReconfigureRejectsInvalid: an inapplicable candidate fails at
// Begin, before anything is staged, and the live state is untouched.
func TestReconfigureRejectsInvalid(t *testing.T) {
	reg := metrics.New()
	net, _, _ := liveRing(t, 30, false, Options{Metrics: reg})
	pre := net.LiveConfig()

	structural := pre
	structural.QueueNum++
	if _, err := net.Reconfigure(structural); err == nil {
		t.Fatal("structural change accepted")
	} else if !strings.Contains(err.Error(), "requires regeneration") {
		t.Fatalf("error = %v", err)
	}

	shrink := pre
	shrink.UnicastSize = 1 // far below the programmed flow entries
	if _, err := net.Reconfigure(shrink); err == nil {
		t.Fatal("shrink below occupancy accepted")
	}

	if d := core.DiffConfigs(pre, net.LiveConfig()); len(d) != 0 {
		t.Fatalf("rejected transactions changed live config:\n%v", d)
	}
	if swCfg := net.Switches[0].Config(); swCfg.UnicastSize != pre.UnicastSize ||
		swCfg.QueuesPerPort != pre.QueueNum {
		t.Fatalf("rejected transactions touched switch state: %+v", swCfg)
	}
	if got := reg.CounterValue(reconfig.MetricTxns, metrics.L("outcome", "rejected")); got != 2 {
		t.Fatalf("rejected counter = %d", got)
	}
}

// TestReconfigFaultInjectedRollback: the fault injector arms a mid-
// apply failure; the transaction rolls back to the exact pre-
// transaction state and traffic is unharmed.
func TestReconfigFaultInjectedRollback(t *testing.T) {
	sc, err := faults.Parse(strings.NewReader(
		`{"faults": [{"at_us": 30000, "kind": "reconfig-fail", "op": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, _, _ := liveRing(t, 60, false, Options{Metrics: reg, Faults: sc})
	pre := net.LiveConfig()

	var txn *reconfig.Txn
	net.Engine.At(40*sim.Millisecond, "grow", func(*sim.Engine) {
		txn, err = net.Reconfigure(grownConfig(pre))
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
	})
	net.Run(0, 100*sim.Millisecond)

	if txn.State() != reconfig.StateRolledBack {
		t.Fatalf("state = %v (%v)", txn.State(), txn.Err())
	}
	if !strings.Contains(txn.Err().Error(), "injected failure") {
		t.Fatalf("err = %v", txn.Err())
	}
	if d := core.DiffConfigs(pre, net.LiveConfig()); len(d) != 0 {
		t.Fatalf("rollback left live-config residue:\n%v", d)
	}
	swCfg := net.Switches[0].Config()
	if swCfg.UnicastSize != pre.UnicastSize || swCfg.QueueDepth != pre.QueueDepth ||
		swCfg.BuffersPerPort != pre.BufferNum {
		t.Fatalf("rollback left switch residue: %+v", swCfg)
	}
	if got := reg.CounterValue(reconfig.MetricTxns, metrics.L("outcome", "rolled-back")); got != 1 {
		t.Fatalf("rolled-back counter = %d", got)
	}
	if ts := net.Summary(ethernet.ClassTS); ts.Lost != 0 {
		t.Fatalf("TS loss across rolled-back reconfiguration: %d", ts.Lost)
	}
}

// TestWatchdogDetectsLeakFault: a buffer-leak fault injected into the
// running network is caught by the invariant watchdog and counted in
// the registry.
func TestWatchdogDetectsLeakFault(t *testing.T) {
	sc, err := faults.Parse(strings.NewReader(
		`{"faults": [{"at_us": 20000, "kind": "buffer-leak", "switch": 0, "port": 0, "slots": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, _, _ := liveRing(t, 30, false, Options{
		Metrics: reg, Faults: sc, EnableWatchdog: true,
	})
	net.Run(0, 50*sim.Millisecond)

	if net.Watchdog == nil {
		t.Fatal("watchdog not built")
	}
	if got := net.Watchdog.Violations()["buffer-conservation"]; got == 0 {
		t.Fatalf("leak not detected: %v (%s)", net.Watchdog.Violations(), net.Watchdog.LastDetail())
	}
	if reg.CounterValue(reconfig.MetricViolations, metrics.L("invariant", "buffer-conservation")) == 0 {
		t.Fatal("violation not counted in registry")
	}
	if ts := net.Summary(ethernet.ClassTS); ts.Lost != 0 {
		t.Fatalf("a two-slot leak must not cost TS frames: lost %d", ts.Lost)
	}
}

// TestDegradationShedsOnlyBE: under severe buffer pressure the
// graceful-degradation policy drops BE at ingress while every TS frame
// still arrives.
func TestDegradationShedsOnlyBE(t *testing.T) {
	reg := metrics.New()
	net, _, _ := liveRing(t, 30, true, Options{
		Metrics: reg, EnableWatchdog: true,
		WatchdogInterval: 200 * sim.Microsecond,
	})
	// Starve switch 0 (the BE sources' first hop) to just past the
	// shed-BE threshold, leaving headroom for the light TS load.
	net.Engine.At(20*sim.Millisecond, "pressure", func(*sim.Engine) {
		pool := net.Switches[0].Port(0).Pool()
		target := pool.Capacity() * 4 / 5 // 0.8 ≥ ShedBE(0.75), < ShedRC(0.90)
		pool.Leak(target - pool.InUse())
	})
	net.Run(0, 80*sim.Millisecond)

	stats := net.SwitchStats()
	if stats.Drops[tsnswitch.DropDegraded] == 0 {
		t.Fatal("degradation never shed a frame")
	}
	if got := net.Switches[0].DegradeLevel(); got != tsnswitch.DegradeShedBE {
		t.Fatalf("switch 0 level = %v, want shed-be", got)
	}
	if ts := net.Summary(ethernet.ClassTS); ts.Lost != 0 {
		t.Fatalf("degradation cost TS frames: lost %d of %d", ts.Lost, ts.Sent)
	}
	if be := net.Summary(ethernet.ClassBE); be.Received == 0 {
		t.Fatal("BE never flowed before the pressure event")
	}
	if reg.CounterValue(reconfig.MetricDegradeTransitions, metrics.L("switch", "0")) == 0 {
		t.Fatal("degradation transition not counted")
	}
}
