package testbed

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/gptp"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

func TestGPTPFailoverReconvergence(t *testing.T) {
	// Kill the grandmaster mid-run through the fault engine and verify
	// the two E-SYNC robustness numbers: BMCA re-elects and the domain's
	// precision re-enters the <50 ns steady-state band (DESIGN.md
	// E-SYNC) within a bounded reconvergence time.
	const (
		killAt     = 2500 * sim.Millisecond // 2 s gPTP warmup + 0.5 s
		reconverge = 1500 * sim.Millisecond // detection + election + servo
		bound      = 50 * sim.Nanosecond
	)
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 12, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { src := i % 6; return 100 + src, 100 + (src+2)%6 },
		Seed:  11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{
		Design: design, Topo: topo, Flows: specs,
		EnableGPTP: true, Seed: 5,
		Faults: &faults.Scenario{Faults: []faults.Fault{
			{AtUs: int64(killAt / sim.Microsecond), Kind: faults.KindGMKill},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The silent crash is only detectable with the 802.1AS sync-receipt
	// watchdog armed (three missed sync intervals).
	net.Domain.EnableAutoFailover(3 * gptp.DefaultConfig().SyncInterval)
	oldGM := net.Domain.Grandmaster()

	// Sample domain precision every 50 ms after the kill to measure the
	// reconvergence time empirically.
	type sample struct {
		at  sim.Time
		off sim.Time
	}
	var samples []sample
	for at := killAt + 50*sim.Millisecond; at <= killAt+2000*sim.Millisecond; at += 50 * sim.Millisecond {
		at := at
		net.Engine.At(at, "precision-sample", func(*sim.Engine) {
			samples = append(samples, sample{at, net.Domain.MaxAbsOffset()})
		})
	}

	net.Run(2*sim.Second, 2600*sim.Millisecond)

	newGM := net.Domain.Grandmaster()
	if newGM == nil || newGM == oldGM {
		t.Fatal("BMCA never re-elected after the grandmaster died")
	}
	// Reconvergence: first sample back under the bound that stays under
	// it for the rest of the run.
	reconvergedAt := sim.Time(-1)
	for _, s := range samples {
		if s.off >= bound {
			reconvergedAt = -1
			continue
		}
		if reconvergedAt < 0 {
			reconvergedAt = s.at
		}
	}
	if reconvergedAt < 0 {
		t.Fatalf("domain never re-entered the %v band; last sample %v", bound, samples[len(samples)-1].off)
	}
	if got := reconvergedAt - killAt; got > reconverge {
		t.Fatalf("reconvergence took %v, bound %v", got, reconverge)
	}
	if off := net.Domain.MaxAbsOffset(); off > bound {
		t.Fatalf("steady-state precision after failover = %v, want < %v", off, bound)
	}
}
