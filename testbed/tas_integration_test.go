package testbed

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/tas"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// buildTASNet assembles a TAS-scheduled ring network.
func buildTASNet(t *testing.T, gptpOn bool) (*Net, *tas.Schedule, []*flows.Spec) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 48, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:  13,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	// A generous guard absorbs residual clock error under gPTP.
	sch, err := tas.Synthesize(specs, topo, tas.Options{MaxFrameBytes: 64, Guard: 4 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := der.Config
	if sch.MaxGateEntries > cfg.GateSize {
		cfg.GateSize = sch.MaxGateEntries
	}
	design, err := core.BuilderFor(cfg, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{Design: design, Topo: topo, Flows: specs,
		EnableGPTP: gptpOn, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.InstallTAS(sch); err != nil {
		t.Fatal(err)
	}
	sch.Apply(specs)
	return net, sch, specs
}

func TestTASWithGPTPClocks(t *testing.T) {
	// TAS schedules must survive real (synchronized, sub-50ns) clocks:
	// the 2 s warmup is a multiple of the 10 ms cycle, so injections
	// stay phase-aligned with the gate lists.
	net, _, _ := buildTASNet(t, true)
	net.Run(2*sim.Second, 50*sim.Millisecond)
	s := net.Summary(ethernet.ClassTS)
	if s.Lost != 0 {
		t.Fatalf("TAS under gPTP lost %d of %d (drops %+v)",
			s.Lost, s.Sent, net.SwitchStats().Drops)
	}
	// Microsecond-scale latency: no CQF slot quantization.
	if s.MeanLatency > 30*sim.Microsecond {
		t.Fatalf("TAS mean latency %v, want µs scale", s.MeanLatency)
	}
}

func TestTASWorstCaseBoundHolds(t *testing.T) {
	net, sch, specs := buildTASNet(t, false)
	net.Run(0, 50*sim.Millisecond)
	if net.Summary(ethernet.ClassTS).Lost != 0 {
		t.Fatal("loss")
	}
	// Every flow's measured max must respect the synthesized bound
	// (plus the final-hop cable the bound already includes).
	topo := net.opts.Topo
	for _, spec := range specs {
		st := net.Collector.Flow(spec.ID)
		if st == nil {
			continue
		}
		bound, err := sch.WorstCaseLatency(spec, topo)
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxLat > bound {
			t.Fatalf("flow %d max %v exceeds synthesized bound %v", spec.ID, st.MaxLat, bound)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Two identical builds must produce bit-identical summaries.
	run := func() (sim.Time, sim.Time, uint64) {
		net, _ := ringScenario(t, 64, 3, true)
		net.Run(2*sim.Second, 50*sim.Millisecond)
		s := net.Summary(ethernet.ClassTS)
		return s.MeanLatency, s.Jitter, s.Received
	}
	m1, j1, r1 := run()
	m2, j2, r2 := run()
	if m1 != m2 || j1 != j2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%v,%v,%d) vs (%v,%v,%d)", m1, j1, r1, m2, j2, r2)
	}
}
