package testbed

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// metricsScenario is a 6-switch ring carrying planned TS flows plus
// one RC background flow, fully instrumented.
func metricsScenario(t *testing.T, nTS int) (*Net, []*flows.Spec, *metrics.Registry) {
	t.Helper()
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
		topo.AttachHost(200+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count:    nTS,
		Period:   10 * sim.Millisecond,
		WireSize: 64,
		VID:      1,
		Hosts: func(i int) (int, int) {
			src := i % 6
			return 100 + src, 100 + (src+2)%6
		},
		Seed: 11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i%4000)
	}
	specs = append(specs, flows.Background(50_000, ethernet.ClassRC,
		200, 102, 3000, 50*ethernet.Mbps))
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, err := Build(Options{
		Design:  design,
		Topo:    topo,
		Flows:   specs,
		Seed:    5,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, specs, reg
}

// TestCQFInvariantViaCounters drives TS traffic under CQF while an RC
// background flow is deliberately over-policed, then checks the TSN
// invariant straight off the telemetry registry: the shared dataplane
// shows meter drops (the background is punished) but zero gate/queue/
// buffer drops, and every TS frame sent is delivered.
func TestCQFInvariantViaCounters(t *testing.T) {
	net, specs, reg := metricsScenario(t, 60)
	// Tighten the RC flow's meter on its first-hop switch far below its
	// offered 50 Mbps, the misbehaving-source scenario 802.1Qci polices.
	rcSpec := specs[len(specs)-1]
	firstHop := net.Switches[rcSpec.Path[0]]
	if err := firstHop.Filter().Meters.Configure(0, 1*ethernet.Mbps, 2048); err != nil {
		t.Fatal(err)
	}
	net.Run(0, 100*sim.Millisecond)

	// Background was policed: meter drops on the first-hop switch only.
	meterDrops := reg.SumCounter(tsnswitch.MetricDrops, metrics.L("reason", "meter"))
	if meterDrops == 0 {
		t.Fatal("over-rate RC background shows no meter drops")
	}
	if perSwitch := reg.CounterValue(tsnswitch.MetricMeterDrop,
		metrics.L("switch", "0")); perSwitch != meterDrops {
		t.Fatalf("meter-stage drops = %d but switch drop counter says %d", perSwitch, meterDrops)
	}
	// The TS invariant: no frame anywhere hit a closed gate, a full
	// queue or an exhausted buffer pool.
	for _, reason := range []tsnswitch.DropReason{
		tsnswitch.DropGateClosed, tsnswitch.DropQueueFull, tsnswitch.DropBufferFull,
	} {
		if n := reg.SumCounter(tsnswitch.MetricDrops, metrics.L("reason", reason.String())); n != 0 {
			t.Errorf("%s drops = %d, want 0", reason, n)
		}
	}
	// Every TS frame sent was delivered, per the registry.
	var tsSent uint64
	sent := net.SentCounts()
	for _, s := range specs {
		if s.Class == ethernet.ClassTS {
			tsSent += sent[s.ID]
		}
	}
	delivered := reg.CounterValue("tsn_flows_delivered_total", metrics.L("class", "TS"))
	if tsSent == 0 || delivered != tsSent {
		t.Fatalf("TS delivered = %d, sent = %d", delivered, tsSent)
	}
	// Registry and legacy Stats agree on the aggregate view.
	st := net.SwitchStats()
	if rx := reg.SumCounter(tsnswitch.MetricRxFrames); rx != st.RxFrames {
		t.Fatalf("rx counter = %d, Stats says %d", rx, st.RxFrames)
	}
	if ev := reg.CounterValue("tsn_sim_events_total"); ev == 0 {
		t.Fatal("scheduler executed no instrumented events")
	}
}

// TestMetricsExportFromTestbed exercises the export path on a built
// network: the snapshot renders Prometheus text containing per-switch
// series for every ring member.
func TestMetricsExportFromTestbed(t *testing.T) {
	net, _, reg := metricsScenario(t, 12)
	net.Run(0, 20*sim.Millisecond)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for s := 0; s < 6; s++ {
		want := `tsn_switch_rx_frames_total{switch="` + string(rune('0'+s)) + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if !strings.Contains(text, "tsn_queue_residence_ns_bucket") {
		t.Error("exposition missing residence histogram")
	}
}
