package testbed

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/faults"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
)

// frerRingScenario builds a 6-switch bidirectional ring with a talker
// on switch 0 and a listener on switch 3, running nTS TS flows between
// them. With withFRER every flow is 802.1CB-replicated onto the
// counter-clockwise path; scenario (may be nil) is a fault script.
func frerRingScenario(t *testing.T, nTS int, withFRER bool, scenario *faults.Scenario) *Net {
	t.Helper()
	topo := topology.RingBidir(6)
	topo.AttachHost(100, 0)
	topo.AttachHost(101, 3)
	specs := flows.GenerateTS(flows.TSParams{
		Count:    nTS,
		Period:   sim.Millisecond,
		WireSize: 128,
		VID:      1,
		Hosts:    func(int) (int, int) { return 100, 101 },
		Seed:     11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
		if withFRER {
			s.FRER = true
			s.AltVID = uint16(1000 + i)
		}
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{
		Design:  design,
		Topo:    topo,
		Flows:   specs,
		Seed:    7,
		Metrics: metrics.New(),
		Faults:  scenario,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// cutPrimary severs the clockwise trunk between switches 1 and 2 — the
// middle of the talker→listener primary path — 50 ms into the run and
// never restores it.
func cutPrimary(t *testing.T) *faults.Scenario {
	t.Helper()
	a, b := 1, 2
	return &faults.Scenario{Faults: []faults.Fault{
		{AtUs: 50_000, Kind: faults.KindLinkDown, A: &a, B: &b},
	}}
}

func TestFRERZeroLossAcrossLinkFailure(t *testing.T) {
	// The headline 802.1CB property: a mid-run hard failure of a primary
	// path link loses not one TS frame, because the member stream on the
	// disjoint counter-clockwise path keeps delivering.
	net := frerRingScenario(t, 6, true, cutPrimary(t))
	net.Run(0, 100*sim.Millisecond)

	ts := net.Summary(ethernet.ClassTS)
	if ts.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if ts.Lost != 0 {
		t.Fatalf("TS loss with FRER = %d of %d (drops %+v)", ts.Lost, ts.Sent, net.SwitchStats().Drops)
	}
	// Before the cut both copies arrive: the recovery function must have
	// eliminated duplicates, and no rogue frames can exist on a healthy
	// dataplane.
	if ts.Duplicates == 0 {
		t.Fatal("no duplicates eliminated: replication never happened")
	}
	if ts.Rogue != 0 {
		t.Fatalf("rogue frames = %d", ts.Rogue)
	}
	// The primary copies sent after the cut died at the downed link and
	// must be attributed there.
	if v := net.Metrics.SumCounter(faults.MetricLinkDrops, metrics.L("reason", "link-down")); v == 0 {
		t.Fatal("no link-down drops attributed despite the cut")
	}
	if net.Injector.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", net.Injector.Injected())
	}
	// Recovery bookkeeping at the listener NIC.
	tbl := net.NICs[101].Recovery()
	if tbl == nil {
		t.Fatal("listener has no recovery table")
	}
	passed, eliminated, rogue := tbl.Stats()
	if passed != ts.Received || eliminated != ts.Duplicates || rogue != 0 {
		t.Fatalf("recovery stats %d/%d/%d vs summary %d/%d", passed, eliminated, rogue, ts.Received, ts.Duplicates)
	}
	// Ordered, gap-free delivery despite the path switch.
	for _, st := range net.Collector.Flows() {
		if st.Reordered != 0 || st.SeqGaps != 0 {
			t.Fatalf("flow %d: %d reordered, %d gaps", st.FlowID, st.Reordered, st.SeqGaps)
		}
	}
	if err := net.CheckBufferLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFailureWithoutFRERFullyAccounted(t *testing.T) {
	// Graceful degradation baseline: the same cut without redundancy
	// loses frames — but every loss is bounded to the outage and
	// attributed to the downed link, with no panic, leak or stuck MAC.
	net := frerRingScenario(t, 6, false, cutPrimary(t))
	net.Run(0, 100*sim.Millisecond)

	ts := net.Summary(ethernet.ClassTS)
	if ts.Lost == 0 {
		t.Fatal("cut lost nothing: fault never bit")
	}
	// The cut lands halfway through the window: losses are bounded by
	// roughly half the offered load (margin for in-flight frames).
	if ts.Lost > ts.Sent/2+uint64(len(net.Collector.Flows())) {
		t.Fatalf("lost %d of %d: more than the outage window can explain", ts.Lost, ts.Sent)
	}
	// Full accounting: every lost frame died at the downed link.
	linkDrops := net.Metrics.SumCounter(faults.MetricLinkDrops, metrics.L("reason", "link-down"))
	if linkDrops != ts.Lost {
		t.Fatalf("lost %d but %d attributed to the downed link", ts.Lost, linkDrops)
	}
	if err := net.CheckBufferLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKindsIntegration(t *testing.T) {
	// Drive the remaining fault kinds through a live testbed: transient
	// buffer exhaustion, gate-table misconfiguration, clock faults and a
	// link flap. Every transient fault must recover, nothing may leak,
	// and any loss must be attributed.
	sw1, sw2, port := 1, 2, 0
	sc := &faults.Scenario{Faults: []faults.Fault{
		{AtUs: 10_000, Kind: faults.KindLinkFlap, A: &sw1, B: &sw2, PeriodUs: 500, Count: 3},
		{AtUs: 30_000, Kind: faults.KindClockStep, Switch: &sw1, StepNs: 800},
		{AtUs: 35_000, Kind: faults.KindClockDrift, Switch: &sw1, DriftPPB: 60_000},
		{AtUs: 40_000, Kind: faults.KindBufferExhaust, Switch: &sw1, Port: &port, Slots: 1 << 20, DurationUs: 5_000},
		{AtUs: 60_000, Kind: faults.KindGateClose, Switch: &sw1, Port: &port, DurationUs: 1_000},
	}}
	topoPort, ok := topology.Ring(6).PortToward(1, 2)
	if !ok {
		t.Fatal("no port 1->2")
	}
	port = topoPort

	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 60, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { src := i % 6; return 100 + src, 100 + (src+3)%6 },
		Seed:  11,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, err := Build(Options{
		Design: design, Topo: topo, Flows: specs,
		Seed: 3, Metrics: reg, Faults: sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(0, 100*sim.Millisecond)

	// 3 flap cycles + 3 one-shot faults (step, drift and the exhaust/
	// gate activations) = 3+1+1+1+1 = 7 injections; flaps, buffer and
	// gate recover = 3+1+1 = 5 recoveries.
	if inj := net.Injector.Injected(); inj != 7 {
		t.Fatalf("injected = %d, want 7", inj)
	}
	if rec := net.Injector.Recovered(); rec != 5 {
		t.Fatalf("recovered = %d, want 5", rec)
	}
	// Losses (if any) are attributed: link drops + switch drops cover
	// the whole gap between sent and received.
	ts := net.Summary(ethernet.ClassTS)
	swStats := net.SwitchStats()
	accounted := reg.SumCounter(faults.MetricLinkDrops) + swStats.TotalDrops()
	if ts.Lost > accounted {
		t.Fatalf("lost %d but only %d drops accounted", ts.Lost, accounted)
	}
	// The transient faults released everything they held.
	if err := net.CheckBufferLeaks(); err != nil {
		t.Fatal(err)
	}
	for s, sw := range net.Switches {
		for p := 0; p < topo.PortCount(s); p++ {
			if r := sw.Port(p).Pool().Reserved(); r != 0 {
				t.Fatalf("switch %d port %d still reserves %d slots", s, p, r)
			}
		}
	}
}
