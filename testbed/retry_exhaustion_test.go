package testbed

// Retry-exhaustion integration test: when every commit attempt of a
// transaction fails — transient fault armed for more attempts than the
// retry budget allows — the network must end exactly where it started.
// VerifyLive is the judge: it compares every switch's live resizable
// resources against the configuration the controller believes is in
// force, so any forgotten rollback shows up as partial state.

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
)

func TestRetryExhaustionRollsBackCleanLive(t *testing.T) {
	net, _, _ := liveRing(t, 60, false, Options{})
	pre := net.LiveConfig()
	net.Reconfig.SetRetryPolicy(2, 100*sim.Microsecond)

	var txn *reconfig.Txn
	net.Engine.At(20*sim.Millisecond, "grow-doomed", func(*sim.Engine) {
		var err error
		txn, err = net.Reconfigure(grownConfig(pre))
		if err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
		// More transient failures than the budget (1 original + 2
		// retries) can absorb: the transaction must exhaust and roll back.
		net.Reconfig.ArmTransient(1, 5)
	})
	net.Run(0, 60*sim.Millisecond)

	if txn == nil {
		t.Fatal("reconfigure event never ran")
	}
	if txn.State() != reconfig.StateRolledBack {
		t.Fatalf("state = %v, want rolled-back after exhausted budget", txn.State())
	}
	if got := txn.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (original + 2 retries)", got)
	}
	// The controller still believes the pre-transaction configuration is
	// in force, and every switch actually carries it: rollback-clean.
	if got := net.LiveConfig(); got != pre {
		t.Fatalf("live config changed by a rolled-back transaction")
	}
	if err := net.VerifyLive(); err != nil {
		t.Fatalf("partial state after exhausted retries: %v", err)
	}
}
