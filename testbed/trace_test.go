package testbed

import (
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/core"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
)

// TestCQFOneSlotPerHop validates the CQF principle packet by packet
// using the dataplane tracer: a frame received in slot s must start
// transmission in slot s+1 at every switch (the second principle of
// §IV.A).
func TestCQFOneSlotPerHop(t *testing.T) {
	topo := topology.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := flows.GenerateTS(flows.TSParams{
		Count: 36, Period: 10 * sim.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+3)%6 },
		Seed:  3,
	})
	for i, s := range specs {
		s.VID = uint16(1 + i)
	}
	if err := core.BindPaths(topo, specs); err != nil {
		t.Fatal(err)
	}
	der, err := core.DeriveConfig(core.Scenario{Topo: topo, Flows: specs})
	if err != nil {
		t.Fatal(err)
	}
	der.Plan.Apply(specs)
	design, err := core.BuilderFor(der.Config, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{
		Design: design, Topo: topo, Flows: specs,
		EnableTrace: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(0, 40*sim.Millisecond)

	if net.Summary(ethernet.ClassTS).Lost != 0 {
		t.Fatal("loss during trace run")
	}
	slot := der.Config.SlotSize
	slotOf := func(at sim.Time) int64 { return int64(at / slot) }

	checked := 0
	for _, spec := range specs {
		for seq := uint32(0); seq < 3; seq++ {
			evs := net.Tracer.Packet(spec.ID, seq)
			if len(evs) == 0 {
				continue
			}
			// Collect (enqueue, tx-start) pairs hop by hop.
			var enq, tx []trace.Event
			for _, ev := range evs {
				switch ev.Kind {
				case trace.KindEnqueue:
					enq = append(enq, ev)
				case trace.KindTxStart:
					tx = append(tx, ev)
				case trace.KindDrop:
					t.Fatalf("packet %d/%d dropped: %v", spec.ID, seq, ev)
				}
			}
			if len(enq) != len(spec.Path) || len(tx) != len(spec.Path) {
				t.Fatalf("packet %d/%d: %d enqueues, %d tx for %d hops",
					spec.ID, seq, len(enq), len(tx), len(spec.Path))
			}
			for h := range enq {
				// Second CQF principle: received in slot s → sent in
				// slot s+1.
				if got, want := slotOf(tx[h].At), slotOf(enq[h].At)+1; got != want {
					t.Fatalf("packet %d/%d hop %d: enq slot %d, tx slot %d",
						spec.ID, seq, h, slotOf(enq[h].At), got)
				}
				// First principle: sending and receiving slot of two
				// adjacent switches are the same (propagation ≪ slot).
				if h > 0 && slotOf(enq[h].At) != slotOf(tx[h-1].At) {
					t.Fatalf("packet %d/%d hop %d: received in slot %d but upstream sent in %d",
						spec.ID, seq, h, slotOf(enq[h].At), slotOf(tx[h-1].At))
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d hop checks performed", checked)
	}
}

// TestTraceDisabledByDefault ensures tracing stays off (and free)
// unless requested.
func TestTraceDisabledByDefault(t *testing.T) {
	net, _ := ringScenario(t, 10, 2, false)
	if net.Tracer != nil {
		t.Fatal("tracer allocated without EnableTrace")
	}
	net.Run(0, 10*sim.Millisecond)
	for _, sw := range net.Switches {
		if sw.Tracer.Len() != 0 {
			t.Fatal("nil tracer recorded events")
		}
	}
}
