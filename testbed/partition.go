// Partitioned builds: the testbed sharded across engines for the
// conservative parallel simulation layer (internal/psim).
//
// The build mirrors the serial Build step for step, but each partition
// gets its own engine, scratch metrics registry, collector, flight
// recorder and attribution layer, so the hot path stays exactly as
// unsynchronized as the serial simulator's. Cross-partition trunk
// cables are rerouted through bounded mailboxes (netdev.SetRemotePost)
// and the partitions advance in barrier-stepped lookahead windows.
// After the run the scratch state merges back — in ascending partition
// order, which together with psim.Assign's ascending-ID blocks makes
// the merged registry byte-identical to a serial run's (the scheduler
// heap-depth gauge excepted: per-partition heaps have their own high
// waters; see DESIGN.md §16).
package testbed

import (
	"fmt"
	"sort"

	"github.com/tsnbuilder/tsnbuilder/internal/analyzer"
	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/frer"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/netdev"
	"github.com/tsnbuilder/tsnbuilder/internal/obs"
	"github.com/tsnbuilder/tsnbuilder/internal/psim"
	"github.com/tsnbuilder/tsnbuilder/internal/reconfig"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/topology"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnnic"
	"github.com/tsnbuilder/tsnbuilder/internal/tsnswitch"
)

// part is one shard of a partitioned network: an engine plus the
// scratch observability state its switches and NICs write into.
type part struct {
	engine *sim.Engine
	reg    *metrics.Registry   // nil when Options.Metrics is nil
	coll   *analyzer.Collector // the partition's receive-side stats
	flight *trace.Flight
	attr   *obs.Attribution // nil when Options.Metrics is nil
	ps     *psim.Partition
}

// mailboxCapacity is the steady-state ring size of one directed cut
// link's mailbox; bursts beyond it spill to the (never-dropping)
// overflow slice.
const mailboxCapacity = 1 << 10

// regFor returns the registry instruments of switch sw resolve
// against: the partition's scratch registry, or the shared one on
// serial builds. May be nil (uninstrumented).
func (n *Net) regFor(sw int) *metrics.Registry {
	if n.parts == nil {
		return n.Metrics
	}
	return n.parts[n.assign[sw]].reg
}

// collectorFor returns the collector that receives host's deliveries:
// the partition's scratch collector, or the shared one on serial
// builds.
func (n *Net) collectorFor(host int) *analyzer.Collector {
	if n.parts == nil {
		return n.Collector
	}
	return n.parts[n.hostPart[host]].coll
}

// Partitions reports how many engines the network runs on (1 for a
// serial build).
func (n *Net) Partitions() int {
	if n.parts == nil {
		return 1
	}
	return len(n.parts)
}

// LookaheadWindow returns the conservative window a partitioned run
// steps by (psim.Unbounded with no cut links); 0 on serial builds.
func (n *Net) LookaheadWindow() sim.Time {
	if n.runner == nil {
		return 0
	}
	return n.runner.Window()
}

// assignDeliverPrios stamps every interface's stable global index as
// its delivery tie-break priority: switch ports in (switch, port)
// order, then NICs in sorted host order, 1-based (0 means unset).
// Serial and partitioned builds both use it, so same-instant delivery
// order is interface order in both — the property that makes the
// partitioned schedule equal the serial one (see internal/psim).
func (n *Net) assignDeliverPrios() {
	idx := uint64(0)
	for s, sw := range n.Switches {
		for p := 0; p < n.opts.Topo.PortCount(s); p++ {
			idx++
			sw.Ifc(p).SetDeliverPrio(idx)
		}
	}
	for _, h := range sortedHosts(n.opts.Topo) {
		idx++
		n.NICs[h].Ifc().SetDeliverPrio(idx)
	}
}

// sortedHosts returns the attached host IDs in ascending order
// (topology.Hosts is map-ordered).
func sortedHosts(t *topology.Topology) []int {
	hosts := append([]int(nil), t.Hosts()...)
	sort.Ints(hosts)
	return hosts
}

// validatePartitioned rejects options that would couple partitions
// outside the frame channel (shared mutable state or cross-partition
// event scheduling), each with the reason it cannot be sharded.
func validatePartitioned(opts Options) error {
	switch {
	case opts.EnableGPTP:
		return fmt.Errorf("testbed: partitioned runs require perfect clocks (gPTP sync spans do not respect the lookahead window)")
	case opts.Faults != nil:
		return fmt.Errorf("testbed: fault injection is not supported in partitioned runs (an injector event would mutate interfaces owned by other partitions)")
	case opts.EnableWatchdog:
		return fmt.Errorf("testbed: the invariant watchdog is not supported in partitioned runs (audits read every switch from one engine)")
	case opts.EnableTrace:
		return fmt.Errorf("testbed: packet tracing is not supported in partitioned runs (the recorder is shared across switches)")
	case opts.Pcap != nil:
		return fmt.Errorf("testbed: pcap capture is not supported in partitioned runs (the writer is shared across NICs)")
	}
	for _, spec := range opts.Flows {
		if spec.FRER {
			return fmt.Errorf("testbed: FRER flow %d is not supported in partitioned runs (recovery-table instruments register in flow-encounter order, which interleaves partitions)", spec.ID)
		}
	}
	return nil
}

// buildPartitioned is Build for Options.Partitions > 1. It must mirror
// the serial build's registration sequence exactly — every instrument
// the serial path resolves against the shared registry resolves here
// against its partition's scratch registry, in the same order — so the
// post-run merge reproduces the serial export byte for byte.
func buildPartitioned(opts Options) (*Net, error) {
	if err := validatePartitioned(opts); err != nil {
		return nil, err
	}
	eff := opts.Partitions
	if eff > opts.Topo.N {
		eff = opts.Topo.N
	}
	if eff < 2 {
		// A one-switch topology collapses to one partition: build the
		// ordinary serial network.
		opts.Partitions = 0
		return Build(opts)
	}
	assign := psim.Assign(opts.Topo, eff)

	n := &Net{
		NICs:      make(map[int]*tsnnic.NIC),
		Collector: analyzer.NewCollector(),
		Health:    &obs.Health{},
		Metrics:   opts.Metrics,
		assign:    assign,
		hostPart:  make(map[int]int),
		opts:      opts,
		specs:     opts.Flows,
		liveCfg:   opts.Design.Config,
		recovery:  make(map[int]*frer.Table),
		prog: progState{
			reserved: make(map[pq]ethernet.Rate),
			nextCBS:  make(map[bankKey]int),
			cbsID:    make(map[pq]int),
		},
	}

	// Per-partition engines and scratch observability state, in the
	// serial build's registration order.
	psParts := make([]*psim.Partition, eff)
	for k := 0; k < eff; k++ {
		p := &part{
			engine: sim.NewEngine(),
			coll:   analyzer.NewCollector(),
			flight: trace.NewFlight(flightCapacity),
		}
		if opts.Metrics != nil {
			p.reg = metrics.New()
			p.reg.Help("tsn_sim_events_total", "discrete events executed")
			p.reg.Help("tsn_sim_heap_depth_high_water", "worst-case scheduler heap depth")
			p.engine.Instrument(
				p.reg.Counter("tsn_sim_events_total"),
				p.reg.Gauge("tsn_sim_heap_depth_high_water"),
			)
			p.coll.Instrument(p.reg)
			p.attr = obs.NewAttribution(p.reg, p.flight)
			p.coll.SetLatencySink(p.attr)
		}
		p.ps = psim.NewPartition(p.engine)
		n.parts = append(n.parts, p)
		psParts[k] = p.ps
	}
	if opts.Metrics != nil {
		// The merge target for per-flow attribution aggregates; its
		// histograms live in the partition registries (nil here).
		n.Attr = obs.NewAttribution(nil, nil)
	}

	// Access ports run at AccessRate when configured (same as serial).
	accessPorts := make(map[topology.Attach]bool)
	if opts.AccessRate > 0 {
		for _, h := range opts.Topo.Hosts() {
			at, _ := opts.Topo.HostAttach(h)
			accessPorts[at] = true
		}
	}

	// Switches, one per topology node, each on its partition's engine.
	// The ascending-ID loop plus ascending-ID partition blocks keep
	// every partition registry's per-switch samples in the serial
	// registration order.
	for s := 0; s < opts.Topo.N; s++ {
		p := n.parts[assign[s]]
		cfg := opts.Design.SwitchConfig(s, opts.Topo.PortCount(s))
		cfg.SharedBufferNum = opts.SharedBufferNum
		cfg.Metrics = p.reg
		if cfg.EnablePreemption {
			return nil, fmt.Errorf("testbed: frame preemption is not supported in partitioned runs (an abort cannot cancel a delivery already mailed to another partition)")
		}
		if opts.AccessRate > 0 {
			cfg.PortRates = make([]ethernet.Rate, cfg.Ports)
			for pt := 0; pt < cfg.Ports; pt++ {
				if accessPorts[topology.Attach{Switch: s, Port: pt}] {
					cfg.PortRates[pt] = opts.AccessRate
				}
			}
		}
		sw := tsnswitch.New(p.engine, cfg)
		sw.Flight = p.flight
		n.Switches = append(n.Switches, sw)
	}

	// Trunk cables. Same-partition links behave exactly as serial;
	// cut links additionally reroute their deliveries through a
	// mailbox per direction, registered as the receiving partition's
	// inbox in TrunkLinks order (A→B then B→A) so drain order is
	// deterministic.
	var cuts []psim.CutLink
	for _, l := range opts.Topo.TrunkLinks() {
		a := n.Switches[l.A.Switch].Ifc(l.A.Port)
		b := n.Switches[l.B.Switch].Ifc(l.B.Port)
		netdev.Connect(a, b, opts.CableDelay)
		if assign[l.A.Switch] == assign[l.B.Switch] {
			continue
		}
		for _, dir := range []struct {
			from, to *netdev.Ifc
			rxPart   int
		}{
			{a, b, assign[l.B.Switch]},
			{b, a, assign[l.A.Switch]},
		} {
			m := psim.NewMailbox(mailboxCapacity)
			n.parts[dir.rxPart].ps.AddInbox(m)
			rx := dir.to
			dir.from.SetRemotePost(func(f *ethernet.Frame, at, wire sim.Time) {
				m.Post(psim.Message{To: rx, Frame: f, At: at, Wire: wire})
			})
			cuts = append(cuts, psim.CutLink{Prop: opts.CableDelay, Rate: dir.from.Rate()})
		}
	}
	n.runner = psim.NewRunner(psParts, psim.Lookahead(cuts))

	// End stations: each NIC lives on (and records into) the partition
	// of the switch it attaches to. NIC↔switch cables are never cut.
	for _, h := range sortedHosts(opts.Topo) {
		at, _ := opts.Topo.HostAttach(h)
		pk := assign[at.Switch]
		n.hostPart[h] = pk
		nicRate := opts.Design.Config.LinkRate
		if opts.AccessRate > 0 {
			nicRate = opts.AccessRate
		}
		nic := tsnnic.New(n.parts[pk].engine, h, nicRate, n.parts[pk].coll)
		netdev.Connect(nic.Ifc(), n.Switches[at.Switch].Ifc(at.Port), opts.CableDelay)
		n.NICs[h] = nic
	}
	n.assignDeliverPrios()

	if err := n.program(); err != nil {
		return nil, err
	}

	// Family-order parity: the serial run registers the CBS stall
	// family (during applyCBS) before the reconfiguration families.
	// applyCBS only touched the partitions that own RC cells; if
	// partition 0 owns none, its registry — which leads the merge and
	// therefore dictates family order — would place the reconfig
	// families first. Pre-registering the family here (a no-op when
	// partition 0 already has it) pins the serial order.
	if opts.Metrics != nil && !opts.DisableCBS && len(n.prog.cbsID) > 0 {
		n.parts[0].reg.Help(cbsStallsName, cbsStallsHelp)
	}

	// The reconfiguration controller registers its metric families at
	// construction; partition 0's registry keeps them in the serial
	// position. Live reconfiguration itself is rejected in partitioned
	// runs (Net.Reconfigure), so the controller only ever exports
	// zero-valued counters — exactly like a serial run that never
	// reconfigures.
	n.Reconfig = reconfig.NewController(n.parts[0].engine, n.parts[0].reg)
	return n, nil
}

// runPartitioned is Run for partitioned builds: start-flow events are
// scheduled on each source NIC's partition engine, the barrier-stepped
// runner advances every partition to the drain deadline, and the
// scratch registries/collectors/attributions merge back in partition
// order. One-shot: the merge folds scratch state into the shared view,
// so a second Run would double-count.
func (n *Net) runPartitioned(warmup, duration sim.Time) {
	if n.merged {
		panic("testbed: partitioned Run may only be called once")
	}
	start := n.parts[0].engine.Now() + warmup
	stop := start + duration
	n.flowStop = stop
	for _, spec := range n.specs {
		nic, ok := n.NICs[spec.SrcHost]
		if !ok {
			panic(fmt.Sprintf("testbed: flow %d source host %d has no NIC", spec.ID, spec.SrcHost))
		}
		nic.SetStopTime(stop)
		spec := spec
		eng := n.parts[n.hostPart[spec.SrcHost]].engine
		eng.At(start, fmt.Sprintf("start-flow%d", spec.ID), func(*sim.Engine) {
			nic.StartFlow(spec)
		})
	}
	drain := 4*n.opts.Design.Config.SlotSize + sim.Millisecond
	n.runner.RunUntil(stop + drain)
	n.mergeResults()
}

// mergeResults folds every partition's scratch state into the shared
// view, in ascending partition order (the order that reproduces serial
// registration, see psim.Assign).
func (n *Net) mergeResults() {
	n.merged = true
	for _, p := range n.parts {
		if n.Metrics != nil {
			n.Metrics.Merge(p.reg)
		}
		n.Collector.Merge(p.coll)
		if n.Attr != nil {
			n.Attr.Merge(p.attr)
		}
	}
}
