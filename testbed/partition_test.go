package testbed

import (
	"strings"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/workload"
)

// parityParams is a mixed-class workload exercising CQF gating, CBS
// shaping and best-effort background across every switch of a ring —
// the surface the serial-vs-partitioned byte-parity guarantee covers.
var parityParams = workload.Params{
	Topology: "ring",
	Switches: 8,
	TSFlows:  48,
	Hops:     3,
	WireSize: 128,
	SlotUs:   65,
	RCMbps:   40,
	BEMbps:   60,
	Seed:     7,
}

// runParity builds the parity workload with the given partition count,
// runs it for 50 ms and returns the network plus its Prometheus export.
func runParity(t *testing.T, partitions int) (*Net, string) {
	t.Helper()
	w, err := workload.Build(parityParams)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	net, err := Build(Options{
		Design:     w.Design,
		Topo:       w.Topo,
		Flows:      w.Specs,
		Metrics:    reg,
		Seed:       5,
		Partitions: partitions,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(0, 50*sim.Millisecond)
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return net, b.String()
}

// normalizeHeapHW blanks the value of the scheduler heap-depth gauge —
// the one metric the partitioned run legitimately differs on (each
// partition heap has its own high water; the merge keeps the maximum,
// the serial run tracks one global heap).
func normalizeHeapHW(t *testing.T, export string) string {
	t.Helper()
	lines := strings.Split(export, "\n")
	found := false
	for i, l := range lines {
		if strings.HasPrefix(l, "tsn_sim_heap_depth_high_water ") {
			lines[i] = "tsn_sim_heap_depth_high_water X"
			found = true
		}
	}
	if !found {
		t.Fatal("export lacks the heap high-water gauge the normalizer expects")
	}
	return strings.Join(lines, "\n")
}

// TestPartitionedParity is the tentpole guarantee: a partitioned run
// exports byte-identical metrics and per-flow statistics to the serial
// run of the same workload.
func TestPartitionedParity(t *testing.T) {
	serial, serialExp := runParity(t, 0)
	if serial.Partitions() != 1 {
		t.Fatalf("serial build reports %d partitions", serial.Partitions())
	}
	for _, parts := range []int{2, 4} {
		par, parExp := runParity(t, parts)
		if got := par.Partitions(); got != parts {
			t.Fatalf("partitioned build reports %d partitions, want %d", got, parts)
		}
		if par.LookaheadWindow() <= 0 {
			t.Fatalf("lookahead window = %v, want positive", par.LookaheadWindow())
		}
		if a, b := normalizeHeapHW(t, serialExp), normalizeHeapHW(t, parExp); a != b {
			t.Fatalf("partitions=%d: Prometheus export differs from serial:\n%s",
				parts, firstDiff(a, b))
		}
		sf, pf := serial.Collector.Flows(), par.Collector.Flows()
		if len(sf) != len(pf) {
			t.Fatalf("partitions=%d: %d flows vs serial %d", parts, len(pf), len(sf))
		}
		for i := range sf {
			if *sf[i] != *pf[i] {
				t.Fatalf("partitions=%d: flow %d stats differ:\nserial      %+v\npartitioned %+v",
					parts, sf[i].FlowID, sf[i], pf[i])
			}
		}
		for _, cls := range []ethernet.Class{ethernet.ClassTS, ethernet.ClassRC, ethernet.ClassBE} {
			if s, p := serial.Summary(cls), par.Summary(cls); s != p {
				t.Fatalf("partitions=%d class %v summary differs:\nserial      %+v\npartitioned %+v",
					parts, cls, s, p)
			}
		}
	}
}

// firstDiff locates the first differing line of two exports, with a
// little context, so a parity failure is readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + itoa(i+1) + ":\nserial:      " + al[i] + "\npartitioned: " + bl[i]
		}
	}
	return "exports differ in length: " + itoa(len(al)) + " vs " + itoa(len(bl)) + " lines"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for ; n > 0; n /= 10 {
		d = append([]byte{byte('0' + n%10)}, d...)
	}
	return string(d)
}

// TestPartitionedParityMesh repeats the parity check on the mesh grid
// — partitions there are row bands with several cut links apiece, the
// worst case for the mailbox merge order.
func TestPartitionedParityMesh(t *testing.T) {
	params := parityParams
	params.Topology = "mesh"
	params.Switches = 9 // 3x3 grid
	params.TSFlows = 27
	run := func(partitions int) (*Net, string) {
		t.Helper()
		w, err := workload.Build(params)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		net, err := Build(Options{
			Design: w.Design, Topo: w.Topo, Flows: w.Specs,
			Metrics: reg, Seed: 5, Partitions: partitions,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Run(0, 30*sim.Millisecond)
		var b strings.Builder
		if err := reg.Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return net, b.String()
	}
	serial, serialExp := run(0)
	par, parExp := run(3)
	if a, b := normalizeHeapHW(t, serialExp), normalizeHeapHW(t, parExp); a != b {
		t.Fatalf("mesh export differs from serial:\n%s", firstDiff(a, b))
	}
	if s, p := serial.Summary(ethernet.ClassTS), par.Summary(ethernet.ClassTS); s != p {
		t.Fatalf("mesh TS summary differs:\nserial      %+v\npartitioned %+v", s, p)
	}
}

// TestPartitionedRunIsDeterministic pins run-to-run byte identity of a
// partitioned run against itself — goroutine scheduling must never leak
// into results.
func TestPartitionedRunIsDeterministic(t *testing.T) {
	_, a := runParity(t, 4)
	_, b := runParity(t, 4)
	if a != b {
		t.Fatalf("two identical partitioned runs diverge:\n%s", firstDiff(a, b))
	}
}

// TestPartitionedRejections enumerates the features a partitioned
// build must refuse, each of which would couple partitions outside the
// frame channel.
func TestPartitionedRejections(t *testing.T) {
	w, err := workload.Build(parityParams)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Design: w.Design, Topo: w.Topo, Flows: w.Specs, Partitions: 2}

	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"gptp", func(o *Options) { o.EnableGPTP = true }},
		{"watchdog", func(o *Options) { o.EnableWatchdog = true }},
		{"trace", func(o *Options) { o.EnableTrace = true }},
		{"pcap", func(o *Options) { o.Pcap = &strings.Builder{} }},
	}
	for _, tc := range cases {
		opts := base
		tc.mut(&opts)
		if _, err := Build(opts); err == nil {
			t.Errorf("%s: partitioned build accepted an unshardable feature", tc.name)
		}
	}

	// FRER flows interleave instrument registration across partitions.
	fp := parityParams
	fp.Topology = "bidir-ring"
	fp.FRERFlows = 4
	fw, err := workload.Build(fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Options{Design: fw.Design, Topo: fw.Topo, Flows: fw.Specs, Partitions: 2}); err == nil {
		t.Error("frer: partitioned build accepted FRER flows")
	}

	// Live reconfiguration and flow addition are rejected at call time.
	net, _ := runParity(t, 2)
	if _, err := net.Reconfigure(net.LiveConfig()); err == nil {
		t.Error("Reconfigure succeeded on a partitioned network")
	}
	if err := net.AddFlows(nil, 0); err == nil {
		t.Error("AddFlows succeeded on a partitioned network")
	}
}

// TestPartitionsClampToTopology asks for more partitions than switches
// and expects a working (clamped) build, plus the degenerate one-switch
// case collapsing to a serial network.
func TestPartitionsClampToTopology(t *testing.T) {
	w, err := workload.Build(parityParams)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(Options{Design: w.Design, Topo: w.Topo, Flows: w.Specs, Partitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Partitions(); got != parityParams.Switches {
		t.Fatalf("Partitions() = %d, want clamp to %d switches", got, parityParams.Switches)
	}
	net.Run(0, 5*sim.Millisecond)
	if s := net.Summary(ethernet.ClassTS); s.Received == 0 {
		t.Fatal("clamped partitioned run delivered nothing")
	}
}
