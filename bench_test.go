// Package bench is the benchmark harness that regenerates every table
// and figure of the paper at full evaluation scale (1024 TS flows,
// 100 ms measurement windows). Each BenchmarkXxx corresponds to one
// table/figure; custom metrics report the headline numbers next to the
// usual ns/op:
//
//	go test -bench=. -benchmem
//
// The text renderings the paper prints are produced by cmd/tsnbench.
package bench

import (
	"fmt"
	"testing"

	"github.com/tsnbuilder/tsnbuilder/internal/ethernet"
	"github.com/tsnbuilder/tsnbuilder/internal/experiments"
	"github.com/tsnbuilder/tsnbuilder/internal/flows"
	"github.com/tsnbuilder/tsnbuilder/internal/itp"
	"github.com/tsnbuilder/tsnbuilder/internal/metrics"
	"github.com/tsnbuilder/tsnbuilder/internal/obs"
	"github.com/tsnbuilder/tsnbuilder/internal/sim"
	"github.com/tsnbuilder/tsnbuilder/internal/trace"
	"github.com/tsnbuilder/tsnbuilder/tsnbuilder"
)

func params() experiments.Params {
	p := experiments.DefaultParams()
	if testing.Short() {
		p = experiments.ShortParams()
	}
	return p
}

// reportSeries attaches the last row's headline metrics to the bench.
func reportSeries(b *testing.B, s *experiments.Series) {
	b.Helper()
	if len(s.Rows) == 0 {
		b.Fatal("empty series")
	}
	last := s.Rows[len(s.Rows)-1]
	b.ReportMetric(last.Mean.Micros(), "mean_µs")
	b.ReportMetric(last.Jitter.Micros(), "jitter_µs")
	b.ReportMetric(100*last.LossRate, "loss_%")
}

// BenchmarkTableI regenerates Table I (queue/buffer configuration
// BRAM totals: 2304 Kb vs 1764 Kb).
func BenchmarkTableI(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI()
		total = rows[0].TotalKb - rows[1].TotalKb
	}
	b.ReportMetric(total, "savedKb")
}

// BenchmarkTableIII regenerates Table III (resource usage of the
// commercial vs star/linear/ring customized switches).
func BenchmarkTableIII(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		cols, err := experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		reduction = cols[3].Reduction
	}
	b.ReportMetric(reduction, "ring_reduction_%")
}

// BenchmarkFig2BE regenerates Fig. 2(a): TS latency under BE
// background on the Table I Case 2 configuration.
func BenchmarkFig2BE(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig2(p, "BE", 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkFig2RC regenerates Fig. 2(b): TS latency under RC
// background.
func BenchmarkFig2RC(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig2(p, "RC", 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkFig7Hops regenerates Fig. 7(a): latency vs hop count.
func BenchmarkFig7Hops(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig7Hops(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkFig7PktSize regenerates Fig. 7(b): latency vs packet size.
func BenchmarkFig7PktSize(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig7PktSize(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkFig7Slot regenerates Fig. 7(c): latency vs slot size.
func BenchmarkFig7Slot(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig7Slot(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkFig7Background regenerates Fig. 7(d): latency vs combined
// RC+BE background load.
func BenchmarkFig7Background(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.Fig7Background(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, s)
}

// BenchmarkQoSEquivalence runs the §IV.C summary claim: the same
// workload on commercial and customized resources.
func BenchmarkQoSEquivalence(b *testing.B) {
	p := params()
	var s *experiments.Series
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.CommercialVsCustomizedQoS(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	diff := s.Rows[0].Mean - s.Rows[1].Mean
	if diff < 0 {
		diff = -diff
	}
	b.ReportMetric(diff.Micros(), "mean_diff_µs")
}

// BenchmarkGPTPPrecision measures the Time Sync template's steady-state
// precision (§IV.A: < 50 ns).
func BenchmarkGPTPPrecision(b *testing.B) {
	var res experiments.SyncResult
	for i := 0; i < b.N; i++ {
		res = experiments.SyncPrecision(uint64(i) + 1)
	}
	b.ReportMetric(float64(res.SteadyState), "steady_ns")
}

// BenchmarkITPAblation measures the queue/buffer BRAM that Injection
// Time Planning saves versus naive zero-offset injection.
func BenchmarkITPAblation(b *testing.B) {
	p := params()
	var rows []experiments.ITPRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ITPAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].QueueBufKb-rows[len(rows)-1].QueueBufKb, "savedKb")
}

// BenchmarkPlatformAblation prices the ring customization on FPGA vs
// ASIC cost models.
func BenchmarkPlatformAblation(b *testing.B) {
	var rows []experiments.PlatformRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PlatformAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TotalKb-rows[1].TotalKb, "blockOverheadKb")
}

// BenchmarkThresholdStudy sweeps queue/buffer provisioning across the
// traffic-dependent threshold of the Table I motivation study.
func BenchmarkThresholdStudy(b *testing.B) {
	p := params()
	var rows []experiments.ThresholdRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ThresholdStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the knee: the smallest zero-loss depth.
	for _, r := range rows {
		if r.TSLossRate == 0 {
			b.ReportMetric(float64(r.QueueDepth), "threshold_depth")
			break
		}
	}
}

// BenchmarkPartitionedRun measures the partitioned parallel simulator
// on the 210-switch mesh at 1/2/4/8 partitions: events/sec per
// partition count plus the 4-partition speedup over the serial engine.
// The study itself enforces parity (identical event/delivery/latency
// totals at every partition count) and fails the bench if it breaks.
// Speedup tracks available cores: on a single-core host the partition
// counts measure synchronization overhead only.
func BenchmarkPartitionedRun(b *testing.B) {
	p := params()
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ScaleStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.EventsPerSec, fmt.Sprintf("p%d_ev/s", r.Partitions))
		if r.Partitions == 4 {
			b.ReportMetric(r.Speedup, "speedup_4p")
		}
	}
	b.ReportMetric(float64(rows[0].Events), "events")
}

// BenchmarkTASvsCQF runs the gate-mechanism ablation: synthesized
// 802.1Qbv schedule against the paper's 2-entry CQF configuration.
func BenchmarkTASvsCQF(b *testing.B) {
	p := params()
	var rows []experiments.TASRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TASvsCQF(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Mean.Micros(), "cqf_mean_µs")
	b.ReportMetric(rows[1].Mean.Micros(), "tas_mean_µs")
	b.ReportMetric(float64(rows[1].GateEntries), "tas_gate_entries")
}

// BenchmarkSMSStudy runs the buffer-architecture ablation (per-port
// pools vs a shared SMS pool).
func BenchmarkSMSStudy(b *testing.B) {
	p := params()
	var rows []experiments.SMSRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SMSStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].BufferKb-rows[1].BufferKb, "sharedSavesKb")
}

// BenchmarkDeadlineStudy sweeps slot sizes against the IEC 60802
// deadline classes.
func BenchmarkDeadlineStudy(b *testing.B) {
	p := params()
	var rows []experiments.DeadlineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.DeadlineStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[len(rows)-1].MissRate, "misses_at_520µs_%")
}

// BenchmarkDesyncStudy measures CQF sensitivity to clock error.
func BenchmarkDesyncStudy(b *testing.B) {
	p := params()
	var rows []experiments.DesyncRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.DesyncStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := rows[0].Jitter
	for _, r := range rows {
		if r.Jitter > worst {
			worst = r.Jitter
		}
	}
	b.ReportMetric(worst.Micros(), "worst_jitter_µs")
}

// BenchmarkCBSStudy runs the credit-based-shaping ablation.
func BenchmarkCBSStudy(b *testing.B) {
	p := params()
	var rows []experiments.CBSRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.CBSStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].BEP99.Micros(), "bare_be_p99_µs")
	b.ReportMetric(rows[1].BEP99.Micros(), "shaped_be_p99_µs")
}

// BenchmarkPreemptStudy measures 802.3br frame preemption on an
// ungated strict-priority port.
func BenchmarkPreemptStudy(b *testing.B) {
	p := params()
	var rows []experiments.PreemptRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PreemptStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TSMax.Micros(), "plain_max_µs")
	b.ReportMetric(rows[1].TSMax.Micros(), "preempt_max_µs")
}

// BenchmarkRateStudy sweeps mixed-speed access links against the CQF
// slot feasibility constraint.
func BenchmarkRateStudy(b *testing.B) {
	p := params()
	var rows []experiments.RateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RateStudy(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[len(rows)-1].TSLossRate, "loss_at_10Mbps_%")
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkEngineEvents measures raw discrete-event throughput.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine()
	var tick func(*sim.Engine)
	n := 0
	tick = func(en *sim.Engine) {
		n++
		if n < b.N {
			en.After(1, "tick", tick)
		}
	}
	e.After(1, "tick", tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkFrameCodec measures the zero-copy codec hot path — the one
// the dataplane uses: AppendMarshal into a recycled buffer, then
// UnmarshalNoCopy aliasing it. Steady state allocates only the decoded
// Frame header; no byte buffers.
func BenchmarkFrameCodec(b *testing.B) {
	f := &ethernet.Frame{
		Dst: ethernet.HostMAC(1), Src: ethernet.HostMAC(2),
		VID: 100, PCP: 7, EtherType: ethernet.TypeTSN,
		Payload: make([]byte, 1000), FlowID: 1, Seq: 2, Class: ethernet.ClassTS,
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.AppendMarshal(buf[:0])
		if _, err := ethernet.UnmarshalNoCopy(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodecCopy measures the copying Marshal/Unmarshal round
// trip — the convenience API that owns its buffers.
func BenchmarkFrameCodecCopy(b *testing.B) {
	f := &ethernet.Frame{
		Dst: ethernet.HostMAC(1), Src: ethernet.HostMAC(2),
		VID: 100, PCP: 7, EtherType: ethernet.TypeTSN,
		Payload: make([]byte, 1000), FlowID: 1, Seq: 2, Class: ethernet.ClassTS,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := f.Marshal()
		if _, err := ethernet.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkITPCompute measures planning time for the paper's 1024-flow
// workload.
func BenchmarkITPCompute(b *testing.B) {
	specs := make([]*flows.Spec, 1024)
	for i := range specs {
		path := make([]int, 1+i%4)
		for h := range path {
			path[h] = (i + h) % 6
		}
		specs[i] = &flows.Spec{
			ID: uint32(i + 1), Class: ethernet.ClassTS, WireSize: 64,
			Period: 10 * sim.Millisecond, Path: path,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := itp.Compute(specs, 65*sim.Microsecond, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveAndBuild measures the full customization path: derive
// parameters from a 1024-flow scenario and build the design.
func BenchmarkDeriveAndBuild(b *testing.B) {
	topo := tsnbuilder.Ring(6)
	for h := 0; h < 6; h++ {
		topo.AttachHost(100+h, h)
	}
	specs := tsnbuilder.GenerateTS(tsnbuilder.TSParams{
		Count: 1024, Period: 10 * tsnbuilder.Millisecond, WireSize: 64, VID: 1,
		Hosts: func(i int) (int, int) { return 100 + i%6, 100 + (i+2)%6 },
		Seed:  1,
	})
	if err := tsnbuilder.BindPaths(topo, specs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		der, err := tsnbuilder.DeriveConfig(tsnbuilder.Scenario{Topo: topo, Flows: specs})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tsnbuilder.BuilderFor(der.Config, nil).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightRecord measures the always-on flight recorder's
// per-event cost — it rides every switch emit, so it must stay
// allocation-free.
func BenchmarkFlightRecord(b *testing.B) {
	fl := trace.NewFlight(1 << 16)
	ev := trace.Event{At: 1, Kind: trace.KindEnqueue, FlowID: 7, Seq: 3, Switch: 1, Port: 2, Queue: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Record(ev)
	}
}

// BenchmarkAttributionObserve measures the per-delivery latency
// attribution in steady state (flow aggregate already exists, no miss):
// a mutex pair, a map hit and six histogram writes, zero allocations.
func BenchmarkAttributionObserve(b *testing.B) {
	reg := metrics.New()
	a := obs.NewAttribution(reg, trace.NewFlight(1<<10))
	f := &ethernet.Frame{FlowID: 5, Seq: 1, Class: ethernet.ClassTS, SentAt: 1000}
	f.Span.Begin(1000)
	f.Span.Claim(300, 100)
	f.Span.OnDeliver(2000, 100, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ObserveLatency(f, 2000, 1000, false)
	}
}

// BenchmarkSpanOps measures the per-hop span bookkeeping a frame pays
// as it crosses the network.
func BenchmarkSpanOps(b *testing.B) {
	var s ethernet.Span
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Begin(100)
		s.Claim(10, 5)
		s.OnDeliver(400, 50, 100)
	}
}
